// Package stateslice is a Go implementation of the State-Slice paradigm for
// multi-query optimization of window-based stream queries (Wang,
// Rundensteiner, Ganguly, Bhatnagar — VLDB 2006).
//
// A workload of continuous window-join queries over two streams — possibly
// with different window sizes and different selections — is executed by one
// shared plan: the join state is sliced into fine-grained window ranges, the
// slices are pipelined into a chain of sliced binary window joins, and
// selections are pushed between the slices. Two provably optimal chain
// layouts are provided: the Mem-Opt chain (minimal state memory, one slice
// per distinct window) and the CPU-Opt chain (minimal comparison cost, found
// by Dijkstra's algorithm over the slice-merge graph). Chains migrate online
// by splitting and merging slices while the stream is running.
//
// The package also implements the two sharing baselines the paper compares
// against — naive sharing with selection pull-up, and stream partition with
// selection push-down — plus an unshared reference, all over the same
// execution engine, so the memory and CPU trade-offs of the paper's
// evaluation can be reproduced (see EXPERIMENTS.md).
//
// # Building plans
//
// Build is the single entry point: a Strategy picks the sharing paradigm
// and functional options tune the build. Every strategy returns the same
// Plan interface, which explains itself, prices itself under the analytic
// cost model, executes sources, and — for chain strategies — re-slices
// online via Migrate.
//
//	w := stateslice.Workload{
//		Queries: []stateslice.Query{
//			{Window: 1 * stateslice.Minute},
//			{Window: 60 * stateslice.Minute, Filter: stateslice.Threshold{S: 0.01}},
//		},
//		Join: stateslice.Equijoin{},
//	}
//	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
//	...
//	fmt.Print(p.Explain())
//
// # Streaming execution
//
// Plans consume tuples incrementally from a Source — a pre-materialized
// slice, a live channel, or the built-in Poisson generator — and can push
// per-query results to Sink callbacks as they are produced, so neither the
// input nor the output has to fit in memory:
//
//	src, err := stateslice.GeneratorSource(stateslice.GeneratorConfig{
//		RateA: 50, RateB: 50, Duration: 90 * stateslice.Second, KeyDomain: 100,
//	})
//	...
//	res, err := p.Run(src, stateslice.RunConfig{})
//
// For tuple-at-a-time control (and online chain migration), drive a session
// instead:
//
//	sess, err := p.NewSession(stateslice.RunConfig{})
//	for t := range tuples {
//		sess.Feed(t)
//	}
//	err = p.Migrate([]stateslice.Time{60 * stateslice.Minute}) // merge the chain
//	res := sess.Finish()
//
// Sessions on migratable chains over unfiltered workloads also change the
// query set while the stream runs: Session.Attach admits a new query against
// the live slice states at a feed barrier (splitting at most one slice, no
// rebuild, no replay — its results from then on are byte-identical to a
// chain built with it from the start), and Session.Detach unsubscribes a
// query, garbage-collecting slices no remaining query reads. WithResultHandler
// streams every query's results, including ones admitted after Build.
//
// # Sharded execution
//
// Equijoin workloads can run the chain as p independent replicas, the input
// hash-partitioned by the join key, with an order-preserving merge
// reassembling the exact sequential output order — byte-identical results
// at every shard count. Each replica's window states shrink by roughly the
// partitioning factor (probe work falls ~p-fold even on one core) and the
// replicas run on separate goroutines:
//
//	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithShards(4))
//	res, err := p.Run(src, stateslice.RunConfig{})
//
// See examples/ for runnable programs and EXPERIMENTS.md for the paper's
// evaluation harness and the tracked shard sweep.
package stateslice

import (
	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/plan"
	"stateslice/internal/stream"
)

// Core stream types.
type (
	// Time is a virtual timestamp in microseconds.
	Time = stream.Time
	// Tuple is a stream element.
	Tuple = stream.Tuple
	// GeneratorConfig parameterises the synthetic Poisson stream
	// generator.
	GeneratorConfig = stream.GeneratorConfig
	// Predicate is a single-tuple selection predicate.
	Predicate = stream.Predicate
	// JoinPredicate decides whether a pair of tuples joins.
	JoinPredicate = stream.JoinPredicate
	// Threshold is the selection "Value >= 1-S" with selectivity S.
	Threshold = stream.Threshold
	// Equijoin matches tuples with equal keys.
	Equijoin = stream.Equijoin
	// BandJoin matches tuples whose keys lie within distance B of each
	// other (|A.Key - B.Key| <= B); shardable via WithShards +
	// WithKeyRange.
	BandJoin = stream.BandJoin
	// CrossProduct matches every pair.
	CrossProduct = stream.CrossProduct
	// FractionMatch matches a deterministic fraction S of pairs.
	FractionMatch = stream.FractionMatch
	// KeyPartitioner is the opt-in capability interface for custom join
	// predicates whose matches imply equal keys, making them eligible for
	// hash-partitioned WithShards execution.
	KeyPartitioner = stream.KeyPartitioner
	// BandPartitioner is the opt-in capability interface for custom join
	// predicates whose matches imply a bounded key distance, making them
	// eligible for band-partitioned WithShards execution (with
	// WithKeyRange).
	BandPartitioner = stream.BandPartitioner
)

// Time units.
const (
	// Microsecond is the base time unit.
	Microsecond = stream.Microsecond
	// Millisecond is 1000 microseconds.
	Millisecond = stream.Millisecond
	// Second is the unit of the paper's window sizes.
	Second = stream.Second
	// Minute is 60 seconds.
	Minute = stream.Minute
)

// Stream identifiers.
const (
	// StreamA is the first input stream (carries the selection
	// attribute).
	StreamA = stream.StreamA
	// StreamB is the second input stream.
	StreamB = stream.StreamB
)

// Seconds converts floating-point seconds to a Time.
func Seconds(s float64) Time { return stream.Seconds(s) }

// Generate produces the merged input of both streams in timestamp order as
// one batch; GeneratorSource is the streaming equivalent.
func Generate(cfg GeneratorConfig) ([]*Tuple, error) { return stream.Generate(cfg) }

// Query and plan types.
type (
	// Query is one continuous window-join query.
	Query = plan.Query
	// Workload is a set of queries sharing one join over two streams.
	Workload = plan.Workload
	// RunConfig tunes an engine run.
	RunConfig = engine.Config
	// Result reports a finished run.
	Result = engine.Result
	// MemoryStats aggregates sampled state sizes.
	MemoryStats = engine.MemoryStats
)

// Cost model (Section 3, 4.3, 5, 6 of the paper).
type (
	// CostParams carries the two-query cost model settings (Table 1).
	CostParams = cost.Params
	// Cost is a (state memory, comparisons/sec) pair.
	Cost = cost.Cost
	// Savings holds the Eq. (4) relative savings of state-slice sharing.
	Savings = cost.Savings
	// QuerySpec abstracts a query for the N-query chain cost model.
	QuerySpec = cost.QuerySpec
	// ChainParams carries the N-query chain model settings.
	ChainParams = cost.ChainParams
	// ChainResult describes an optimized chain layout.
	ChainResult = chain.Result
	// MigrationStep is one merge or split of an online chain migration.
	MigrationStep = chain.MigrationStep
)

// PullUpCost evaluates Eq. (1) of the paper.
func PullUpCost(p CostParams) Cost { return cost.PullUp(p) }

// PushDownCost evaluates Eq. (2).
func PushDownCost(p CostParams) Cost { return cost.PushDown(p) }

// StateSliceCost evaluates Eq. (3).
func StateSliceCost(p CostParams) Cost { return cost.StateSlice(p) }

// ComputeSavings evaluates Eq. (4) at window ratio rho = W1/W2.
func ComputeSavings(rho, sSigma, s1 float64) Savings { return cost.ComputeSavings(rho, sSigma, s1) }

// MemOptEnds returns the Mem-Opt slice boundaries for a query set.
func MemOptEnds(queries []QuerySpec) []float64 { return chain.MemOptEnds(queries) }

// CPUOptEnds returns the CPU-Opt slice boundaries, cost and memory for a
// query set under the chain cost model.
func CPUOptEnds(queries []QuerySpec, p ChainParams) (*ChainResult, error) {
	return chain.CPUOptEnds(queries, p)
}

// ChainCostOf evaluates the chain cost model for an explicit slice boundary
// layout: total state memory (KB) and comparisons per second.
func ChainCostOf(queries []QuerySpec, ends []float64, p ChainParams) (Cost, error) {
	return cost.ChainCost(queries, ends, p)
}

// PlanMigration computes the merge/split steps that turn one chain boundary
// layout into another (Section 5.3).
func PlanMigration(from, to []float64) ([]MigrationStep, error) {
	return chain.PlanMigration(from, to)
}
