package stateslice_test

// Recovery suite: with WithRecovery(Restart{...}), an injected replica panic
// mid-stream must heal — the replica is rebuilt from its last runner-local
// snapshot, the delta is replayed from the ring, replayed duplicates are
// suppressed — and the merged output must be byte-identical to the unfaulted
// sequential run, across (p ∈ {1,4}) × (query-merge, slice-merge) ×
// (equijoin, band). Fail-fast must survive unchanged everywhere supervision
// does not apply: merge-layer panics, non-panic errors, exhausted budgets,
// and sessions without WithRecovery. The file runs under -race in CI.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"stateslice"
	"stateslice/internal/fault"
)

// testRestart is an aggressive policy so tests spend microseconds, not the
// default milliseconds, backing off. SnapshotEvery is small enough that the
// chaos input crosses several snapshot points, so restarts genuinely restore
// from a mid-stream checkpoint instead of replaying from zero.
func testRestart(maxRestarts int) stateslice.Restart {
	return stateslice.Restart{
		MaxRestarts:   maxRestarts,
		Backoff:       10 * time.Microsecond,
		MaxBackoff:    100 * time.Microsecond,
		SnapshotEvery: 128,
	}
}

// recoverCase is one leg of the recovery matrix.
type recoverCase struct {
	name string
	w    stateslice.Workload
	opts []stateslice.Option
}

// recoverMatrix is (p ∈ {1,4}) × (query-merge, slice-merge) × (equijoin,
// band): WithMigratable forces the query-level merge (migratable chains are
// ineligible for the slice-merge fast path); the unfiltered workloads are
// slice-merge eligible without it.
func recoverMatrix() []recoverCase {
	eq := chaosWorkload()
	band := bandWorkloadAPI(1)
	keyRange := stateslice.WithKeyRange(0, 11)
	var cases []recoverCase
	for _, p := range []int{1, 4} {
		shards := stateslice.WithShards(p)
		cases = append(cases,
			recoverCase{name: sprintCase("equijoin/query-merge", p), w: eq,
				opts: []stateslice.Option{shards, stateslice.WithMigratable()}},
			recoverCase{name: sprintCase("equijoin/slice-merge", p), w: eq,
				opts: []stateslice.Option{shards}},
			recoverCase{name: sprintCase("band/query-merge", p), w: band,
				opts: []stateslice.Option{shards, stateslice.WithMigratable(), keyRange}},
			recoverCase{name: sprintCase("band/slice-merge", p), w: band,
				opts: []stateslice.Option{shards, keyRange}},
		)
	}
	return cases
}

func sprintCase(kind string, p int) string {
	if p == 1 {
		return kind + "/p=1"
	}
	return kind + "/p=4"
}

// sequentialReference runs the workload unsharded and returns its rendered
// per-query results — the byte-identity target for every recovered run.
func sequentialReference(t *testing.T, w stateslice.Workload, input []*stateslice.Tuple) string {
	t.Helper()
	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOutputs() == 0 {
		t.Fatal("reference produced no results; the byte-identity check is vacuous")
	}
	return renderResults(res.Results)
}

// TestRecoverReplicaPanicByteIdentical is the tentpole acceptance matrix:
// one injected replica-feed panic mid-stream on every topology, healed by
// supervision, output byte-identical to the unfaulted sequential run.
func TestRecoverReplicaPanicByteIdentical(t *testing.T) {
	input := chaosInput(t)
	for _, tc := range recoverMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			want := sequentialReference(t, tc.w, input)
			var fed atomic.Int64
			restore := fault.Inject(fault.ReplicaFeed, func(int) error {
				if fed.Add(1) == 300 {
					panic("recover: replica blew up")
				}
				return nil
			})
			defer restore()
			opts := append([]stateslice.Option{stateslice.WithCollect(),
				stateslice.WithRecovery(testRestart(3))}, tc.opts...)
			p, err := stateslice.Build(tc.w, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := p.NewSession(stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Consume(stateslice.SliceSource(input)); err != nil {
				t.Fatalf("Consume after a supervised restart returned %v, want nil", err)
			}
			res := sess.Finish()
			if res.Err != nil {
				t.Fatalf("Result.Err = %v after a supervised restart, want nil", res.Err)
			}
			if fed.Load() < 300 {
				t.Fatal("the fault never fired; the recovery check is vacuous")
			}
			if res.Recovery == nil || res.Recovery.Restarts == 0 {
				t.Fatalf("Result.Recovery = %+v, want at least one recorded restart", res.Recovery)
			}
			if got := renderResults(res.Results); got != want {
				t.Error("recovered output differs from the unfaulted sequential run")
			}
			sess.Close(context.Background())
		})
	}
}

// TestRecoverRepeatedPanics injects three panics spread across the stream on
// a p=4 topology of each merge kind: every restart must restore from the
// then-current snapshot and the final output must still be byte-identical.
func TestRecoverRepeatedPanics(t *testing.T) {
	input := chaosInput(t)
	w := chaosWorkload()
	want := sequentialReference(t, w, input)
	for _, tc := range []struct {
		name string
		opts []stateslice.Option
	}{
		{"query-merge", []stateslice.Option{stateslice.WithShards(4), stateslice.WithMigratable()}},
		{"slice-merge", []stateslice.Option{stateslice.WithShards(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var fed atomic.Int64
			restore := fault.Inject(fault.ReplicaFeed, func(int) error {
				switch fed.Add(1) {
				case 150, 450, 700:
					panic("recover: replica blew up again")
				}
				return nil
			})
			defer restore()
			opts := append([]stateslice.Option{stateslice.WithCollect(),
				stateslice.WithRecovery(testRestart(12))}, tc.opts...)
			p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
			if err != nil {
				t.Fatalf("Run with repeated supervised restarts returned %v, want nil", err)
			}
			if res.Recovery == nil || res.Recovery.Restarts != 3 {
				t.Fatalf("Result.Recovery = %+v, want 3 recorded restarts", res.Recovery)
			}
			if got := renderResults(res.Results); got != want {
				t.Error("output after repeated restarts differs from the unfaulted sequential run")
			}
		})
	}
}

// TestRecoverExhaustedBudgetFailsFast pins the degradation rule: a replica
// that keeps panicking past MaxRestarts must fail the session with the
// classified PanicError, exactly like fail-fast, and release every goroutine.
func TestRecoverExhaustedBudgetFailsFast(t *testing.T) {
	input := chaosInput(t)
	for _, tc := range []struct {
		name string
		opts []stateslice.Option
	}{
		{"query-merge", []stateslice.Option{stateslice.WithShards(4), stateslice.WithMigratable()}},
		{"slice-merge", []stateslice.Option{stateslice.WithShards(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var fed atomic.Int64
			restore := fault.Inject(fault.ReplicaFeed, func(int) error {
				if fed.Add(1) >= 300 {
					panic("recover: replica keeps dying")
				}
				return nil
			})
			defer restore()
			tp := topology{name: tc.name, sharded: true,
				opts: tc.opts}
			err, res := runChaos(t, tp, input, stateslice.WithRecovery(testRestart(2)))
			assertPanicErr(t, err, "replica runner")
			if res.Recovery == nil || res.Recovery.Exhausted == 0 {
				t.Fatalf("Result.Recovery = %+v, want an exhausted budget on record", res.Recovery)
			}
		})
	}
}

// TestRecoverMergePanicStaysFailFast asserts supervision never extends to the
// merge layer: a panic in a merge or assembly worker fails fast even with
// WithRecovery armed (merge state cannot be rebuilt from a replica snapshot).
func TestRecoverMergePanicStaysFailFast(t *testing.T) {
	input := chaosInput(t)
	for _, tc := range []struct {
		name   string
		point  fault.Point
		wantOp string
		opts   []stateslice.Option
	}{
		{"query-merge", fault.MergeApply, "merge worker",
			[]stateslice.Option{stateslice.WithShards(4), stateslice.WithMigratable()}},
		{"slice-merge", fault.AssembleApply, "assembly worker",
			[]stateslice.Option{stateslice.WithShards(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer assertGoroutinesReleased(t, goroutineBase())
			var applied atomic.Int64
			restore := fault.Inject(tc.point, func(int) error {
				if applied.Add(1) == 3 {
					panic("recover: merge layer blew up")
				}
				return nil
			})
			defer restore()
			tp := topology{name: tc.name, sharded: true, opts: tc.opts}
			err, res := runChaos(t, tp, input, stateslice.WithRecovery(testRestart(3)))
			assertPanicErr(t, err, tc.wantOp)
			if res.Recovery != nil && res.Recovery.Restarts != 0 {
				t.Fatalf("supervision restarted %d replicas on a merge fault", res.Recovery.Restarts)
			}
		})
	}
}

// TestRecoverPlainErrorStaysFailFast asserts non-panic replica errors stay
// ineligible: an error *return* from the feed path is a usage or data fault,
// not a contained crash, and restarting would mask the bug.
func TestRecoverPlainErrorStaysFailFast(t *testing.T) {
	defer assertGoroutinesReleased(t, goroutineBase())
	input := chaosInput(t)
	injected := errors.New("recover: data fault")
	var fed atomic.Int64
	restore := fault.Inject(fault.ReplicaFeed, func(int) error {
		if fed.Add(1) == 300 {
			return injected
		}
		return nil
	})
	defer restore()
	tp := topology{name: "shards=4", sharded: true,
		opts: []stateslice.Option{stateslice.WithShards(4)}}
	err, res := runChaos(t, tp, input, stateslice.WithRecovery(testRestart(3)))
	if !errors.Is(err, injected) {
		t.Fatalf("replica error surfaced as %v, want the injected data fault", err)
	}
	if res.Recovery != nil && res.Recovery.Restarts != 0 {
		t.Fatalf("supervision restarted %d replicas on a plain error", res.Recovery.Restarts)
	}
}

// TestRecoverRequiresShards pins the option contract: supervision wraps the
// sharded executor's replicas, so WithRecovery without WithShards must fail
// at Build with a message naming the dependency.
func TestRecoverRequiresShards(t *testing.T) {
	_, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithRecovery(stateslice.Restart{}))
	if err == nil {
		t.Fatal("WithRecovery without WithShards must fail at Build")
	}
}
