// Sensors: the paper's Section 7.2 scenario — three monitoring queries over
// temperature and humidity sensor streams with different windows, two of
// them filtered — executed under all three sharing strategies, reporting the
// memory and CPU trade-off of Figures 17 and 18.
//
// Run with:
//
//	go run ./examples/sensors [-rate 60] [-duration 90]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"stateslice"
)

func main() {
	rate := flag.Float64("rate", 60, "per-stream input rate (tuples/sec)")
	duration := flag.Float64("duration", 90, "virtual run length (seconds)")
	flag.Parse()

	// Q1 monitors all locations over a short window; Q2 and Q3 watch only
	// overheating sensors (top 20% of values) over longer windows.
	hot := stateslice.Threshold{S: 0.2}
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "recent-all", Window: 5 * stateslice.Second},
			{Name: "hot-medium", Window: 10 * stateslice.Second, Filter: hot},
			{Name: "hot-long", Window: 30 * stateslice.Second, Filter: hot},
		},
		Join: stateslice.Equijoin{},
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: *rate, RateB: *rate,
		Duration:  stateslice.Seconds(*duration),
		KeyDomain: 50,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 queries, %d input tuples at %.0f t/s per stream\n\n", len(input), *rate)

	type row struct {
		name string
		res  *stateslice.Result
	}
	var rows []row

	pu, err := stateslice.PullUpPlan(w, false)
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, p *stateslice.Plan) {
		res, err := stateslice.Run(p, input, stateslice.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, res})
	}
	run("selection pull-up (NiagaraCQ naive)", pu)

	pd, err := stateslice.PushDownPlan(w, false)
	if err != nil {
		log.Fatal(err)
	}
	run("stream partition (push-down)", pd)

	sp, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	run("state-slice chain (this paper)", sp.Plan)

	un, err := stateslice.UnsharedPlan(w, false)
	if err != nil {
		log.Fatal(err)
	}
	run("unshared (one plan per query)", un)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tavg state (tuples)\tcomparisons\ttuples/Mcmp\twall tuples/s\tresults")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%.0f\t%.0f\t%d\n",
			r.name, r.res.Memory.Avg, r.res.Meter.Comparisons(),
			r.res.ComparisonRate(0), r.res.ServiceRate(), r.res.TotalOutputs())
	}
	tw.Flush()

	// All strategies must produce identical per-query answers.
	for i := range rows[0].res.SinkCounts {
		for _, r := range rows[1:] {
			if r.res.SinkCounts[i] != rows[0].res.SinkCounts[i] {
				log.Fatalf("strategies disagree on query %d", i)
			}
		}
	}
	fmt.Println("\nall strategies delivered identical per-query answers:", rows[0].res.SinkCounts)

	// What the analytical model (Eq. 4) predicts for the Q1/Q3 pair.
	s := stateslice.ComputeSavings(5.0/30.0, 0.2, 0.1)
	fmt.Printf("\nEq. (4) predicted savings at rho=1/6, Ssigma=0.2, S1=0.1:\n")
	fmt.Printf("  memory vs pull-up %.0f%%, vs push-down %.0f%%; CPU vs pull-up %.0f%%, vs push-down %.0f%%\n",
		100*s.MemVsPullUp, 100*s.MemVsPushDown, 100*s.CPUVsPullUp, 100*s.CPUVsPushDown)
}
