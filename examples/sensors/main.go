// Sensors: the paper's Section 7.2 scenario — three monitoring queries over
// temperature and humidity sensor streams with different windows, two of
// them filtered — executed under every sharing strategy through the single
// Build entry point, reporting the memory and CPU trade-off of Figures 17
// and 18. A streaming Sink watches one query's results arrive live.
//
// Run with:
//
//	go run ./examples/sensors [-rate 60] [-duration 90]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"stateslice"
)

func main() {
	rate := flag.Float64("rate", 60, "per-stream input rate (tuples/sec)")
	duration := flag.Float64("duration", 90, "virtual run length (seconds)")
	flag.Parse()

	// Q1 monitors all locations over a short window; Q2 and Q3 watch only
	// overheating sensors (top 20% of values) over longer windows.
	hot := stateslice.Threshold{S: 0.2}
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "recent-all", Window: 5 * stateslice.Second},
			{Name: "hot-medium", Window: 10 * stateslice.Second, Filter: hot},
			{Name: "hot-long", Window: 30 * stateslice.Second, Filter: hot},
		},
		Join: stateslice.Equijoin{},
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: *rate, RateB: *rate,
		Duration:  stateslice.Seconds(*duration),
		KeyDomain: 50,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 queries, %d input tuples at %.0f t/s per stream\n\n", len(input), *rate)

	// One strategy enum value per run; every plan comes out of the same
	// Build call and is driven the same way. A Sink callback streams the
	// first few hot-long alerts as they are produced.
	type row struct {
		name string
		res  *stateslice.Result
	}
	var rows []row
	alerts := 0
	alertSink := stateslice.SinkFunc(func(t *stateslice.Tuple) {
		if alerts < 3 {
			fmt.Printf("  [live hot-long alert] %s\n", t)
		}
		alerts++
	})

	strategies := []stateslice.Strategy{
		stateslice.PullUp, stateslice.PushDown, stateslice.MemOpt, stateslice.Unshared,
	}
	for _, s := range strategies {
		opts := []stateslice.Option{}
		if s == stateslice.MemOpt {
			opts = append(opts, stateslice.WithSink(2, alertSink))
		}
		p, err := stateslice.Build(w, s, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if s == stateslice.MemOpt {
			fmt.Println("state-slice chain, streaming the first hot-long alerts:")
		}
		res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{p.Name(), res})
	}
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tavg state (tuples)\tcomparisons\ttuples/Mcmp\twall tuples/s\tresults")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%.0f\t%.0f\t%d\n",
			r.name, r.res.Memory.Avg, r.res.Meter.Comparisons(),
			r.res.ComparisonRate(0), r.res.ServiceRate(), r.res.TotalOutputs())
	}
	tw.Flush()

	// All strategies must produce identical per-query answers.
	for i := range rows[0].res.SinkCounts {
		for _, r := range rows[1:] {
			if r.res.SinkCounts[i] != rows[0].res.SinkCounts[i] {
				log.Fatalf("strategies disagree on query %d", i)
			}
		}
	}
	fmt.Println("\nall strategies delivered identical per-query answers:", rows[0].res.SinkCounts)

	// What the analytical model (Eq. 4) predicts for the Q1/Q3 pair.
	s := stateslice.ComputeSavings(5.0/30.0, 0.2, 0.1)
	fmt.Printf("\nEq. (4) predicted savings at rho=1/6, Ssigma=0.2, S1=0.1:\n")
	fmt.Printf("  memory vs pull-up %.0f%%, vs push-down %.0f%%; CPU vs pull-up %.0f%%, vs push-down %.0f%%\n",
		100*s.MemVsPullUp, 100*s.MemVsPushDown, 100*s.CPUVsPullUp, 100*s.CPUVsPushDown)
}
