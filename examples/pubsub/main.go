// Pubsub: a publish/subscribe service hosting dozens of subscriptions over
// the same two event streams, each subscription a window join with its own
// window size (the paper's Section 7.3 scenario, Table 4's Small-Large
// distribution). The example builds the Mem-Opt and CPU-Opt chains through
// Build, compares their modelled and measured costs, runs the Mem-Opt chain
// concurrently (one goroutine per slice), and then re-slices the running
// plan with Migrate when subscriptions churn.
//
// Run with:
//
//	go run ./examples/pubsub [-subs 24] [-rate 40]
package main

import (
	"flag"
	"fmt"
	"log"

	"stateslice"
)

func main() {
	subs := flag.Int("subs", 24, "number of subscriptions (even, >= 4)")
	rate := flag.Float64("rate", 40, "per-stream event rate (tuples/sec)")
	flag.Parse()

	// Subscriptions cluster at short windows (breaking-news correlation)
	// and long windows (daily digests): the bimodal Small-Large shape.
	var queries []stateslice.Query
	h := *subs / 2
	for i := 1; i <= h; i++ {
		queries = append(queries, stateslice.Query{
			Name:   fmt.Sprintf("fresh-%d", i),
			Window: stateslice.Seconds(6 * float64(i) / float64(h)),
		})
	}
	for i := 1; i <= h; i++ {
		queries = append(queries, stateslice.Query{
			Name:   fmt.Sprintf("digest-%d", i),
			Window: stateslice.Seconds(24 + 6*float64(i)/float64(h)),
		})
	}
	w := stateslice.Workload{Queries: queries, Join: stateslice.FractionMatch{S: 0.025}}

	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: *rate, RateB: *rate,
		Duration: 60 * stateslice.Second,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same cost model drives the CPU-Opt optimizer and every plan's
	// EstimatedCost. Values are taken verbatim — no silent defaulting.
	model := stateslice.CostModel{
		RateA: *rate, RateB: *rate,
		JoinSelectivity: 0.025,
		Csys:            stateslice.DefaultCsys,
		TupleKB:         stateslice.DefaultTupleKB,
	}

	fmt.Printf("%d subscriptions sharing one chain\n", len(queries))
	for _, s := range []stateslice.Strategy{stateslice.MemOpt, stateslice.CPUOpt} {
		p, err := stateslice.Build(w, s, stateslice.WithCostParams(model))
		if err != nil {
			log.Fatal(err)
		}
		est, err := p.EstimatedCost()
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{SampleEvery: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d slices, modelled %.0f KB / %.0f cmp/s; measured %d comparisons + %d invocations, avg state %.0f tuples, wall %.0f tuples/s\n",
			p.Name(), len(p.Ends()), est.MemoryKB, est.CPU,
			res.Meter.Comparisons(), res.Meter.Invocations, res.Memory.Avg, res.ServiceRate())
	}

	// The same Mem-Opt chain under the concurrent executor: one
	// goroutine per sliced join, reached through the same Build path.
	pc, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithConcurrency())
	if err != nil {
		log.Fatal(err)
	}
	cres, err := pc.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: %d results, wall %.0f tuples/s\n",
		pc.Name(), cres.TotalOutputs(), cres.ServiceRate())

	// Subscription churn: the shortest-window subscriber leaves, a new
	// one registers between two existing windows. Re-slice the running
	// CPU-Opt chain with one Migrate call (Section 5.3) without
	// stopping the stream.
	fmt.Println("\nsubscription churn: migrating the live chain")
	live, err := stateslice.Build(w, stateslice.CPUOpt,
		stateslice.WithCostParams(model), stateslice.WithMigratable())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := live.NewSession(stateslice.RunConfig{SampleEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	half := len(input) / 2
	if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
		log.Fatal(err)
	}
	before := live.Ends()
	// Drop the smallest boundary (its subscriber left, unless the chain
	// is already a single slice) and add an intermediate boundary in the
	// last slice (a new subscriber).
	target := append([]stateslice.Time{}, before...)
	if len(target) > 1 {
		target = target[1:]
	}
	last := len(target) - 1
	var prevEnd stateslice.Time
	if last > 0 {
		prevEnd = target[last-1]
	}
	mid := (prevEnd + target[last]) / 2
	target = append(target[:last], mid, target[last])
	if err := live.Migrate(target); err != nil {
		log.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
		log.Fatal(err)
	}
	res := sess.Finish()
	fmt.Printf("  boundaries before: %d slices, after: %d slices\n", len(before), len(live.Ends()))
	fmt.Printf("  run finished with %d results, %d order violations\n",
		res.TotalOutputs(), res.OrderViolations)

	// Sanity: a static run delivers the same answer set sizes.
	ref, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{SampleEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range res.SinkCounts {
		if res.SinkCounts[i] != refRes.SinkCounts[i] {
			same = false
		}
	}
	fmt.Printf("  per-subscription answers identical to an unmigrated run: %v\n", same)
}
