// Pubsub: a publish/subscribe service hosting dozens of subscriptions over
// the same two event streams, each subscription a window join with its own
// window size (the paper's Section 7.3 scenario, Table 4's Small-Large
// distribution). Subscribers churn while events flow: the example starts a
// Mem-Opt chain with a founding subscription set, then admits late
// subscribers with Session.Attach and cancels others with Session.Detach —
// no rebuild, no replay, the stream never stops. WithResultHandler streams
// every subscription's matches (including ones admitted mid-stream) and
// Explain renders the live subscription set after each change.
//
// Run with:
//
//	go run ./examples/pubsub [-subs 24] [-rate 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"stateslice"
)

func main() {
	subs := flag.Int("subs", 24, "number of subscriptions (even, >= 4)")
	rate := flag.Float64("rate", 40, "per-stream event rate (tuples/sec)")
	flag.Parse()

	// Subscriptions cluster at short windows (breaking-news correlation)
	// and long windows (daily digests): the bimodal Small-Large shape.
	// Half the service's subscribers are present at launch; the rest
	// register while events are already flowing.
	var founding, late []stateslice.Query
	h := *subs / 2
	for i := 1; i <= h; i++ {
		q := stateslice.Query{
			Name:   fmt.Sprintf("fresh-%d", i),
			Window: stateslice.Seconds(6 * float64(i) / float64(h)),
		}
		if i%2 == 0 {
			late = append(late, q)
		} else {
			founding = append(founding, q)
		}
	}
	for i := 1; i <= h; i++ {
		q := stateslice.Query{
			Name:   fmt.Sprintf("digest-%d", i),
			Window: stateslice.Seconds(24 + 6*float64(i)/float64(h)),
		}
		if i%2 == 1 && i < h {
			late = append(late, q)
		} else {
			founding = append(founding, q)
		}
	}
	// Admission subscribes a query to the existing slice prefix, so a
	// late window may not exceed the chain's largest boundary: keep the
	// largest digest in the founding set (done above — i == h stays).
	w := stateslice.Workload{Queries: founding, Join: stateslice.FractionMatch{S: 0.025}}

	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: *rate, RateB: *rate,
		Duration: 60 * stateslice.Second,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every subscription's matches stream through one handler, keyed by
	// the QueryID that Build (founding set, in order) or Attach (late
	// set, on admission) assigned. Names are tracked alongside so the
	// final report reads like a subscriber ledger.
	var (
		mu        sync.Mutex
		delivered = map[stateslice.QueryID]uint64{}
	)
	names := map[stateslice.QueryID]string{}
	for i, q := range founding {
		names[stateslice.QueryID(i)] = q.Name
	}

	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithMigratable(),
		stateslice.WithResultHandler(func(id stateslice.QueryID, t *stateslice.Tuple) {
			mu.Lock()
			delivered[id]++
			mu.Unlock()
		}))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{SampleEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launch: %d founding subscriptions, %d slices\n",
		len(founding), len(p.Ends()))

	// Phase 1: the founding subscribers alone.
	third := len(input) / 3
	if err := sess.Consume(stateslice.SliceSource(input[:third])); err != nil {
		log.Fatal(err)
	}

	// Phase 2: the late subscribers register, one Attach barrier each.
	// Each admission splits at most one slice and rewires the prefix the
	// new window covers; from its admission on, a subscriber's matches
	// are byte-identical to what a chain built with it would deliver.
	before := len(p.Ends())
	for _, q := range late {
		id, err := sess.Attach(q)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = q.Name
	}
	fmt.Printf("churn-in: +%d subscribers admitted live, %d slices -> %d\n",
		len(late), before, len(p.Ends()))
	if err := sess.Consume(stateslice.SliceSource(input[third : 2*third])); err != nil {
		log.Fatal(err)
	}

	// Phase 3: every odd-numbered digest cancels. Detach unsubscribes
	// the query and garbage-collects trailing slices no remaining
	// subscriber reads; the canceled IDs stay valid (and dead) in the
	// final result, they are never reused for later subscribers.
	var canceled []stateslice.QueryID
	for id, name := range names {
		var d int
		if n, _ := fmt.Sscanf(name, "digest-%d", &d); n != 1 || d%2 == 0 {
			continue
		}
		if err := sess.Detach(id); err != nil {
			log.Fatal(err)
		}
		canceled = append(canceled, id)
	}
	fmt.Printf("churn-out: -%d subscribers detached, %d slices remain\n",
		len(canceled), len(p.Ends()))
	fmt.Println("\nlive set after churn (Explain):")
	fmt.Print(p.Explain())
	if err := sess.Consume(stateslice.SliceSource(input[2*third:])); err != nil {
		log.Fatal(err)
	}

	res := sess.Finish()
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("\nrun finished: %d results, %d order violations, avg state %.0f tuples\n",
		res.TotalOutputs(), res.OrderViolations, res.Memory.Avg)

	// The handler saw exactly what the per-query counters delivered —
	// for founding, admitted and canceled subscribers alike.
	same := len(res.SinkCounts) == len(names)
	for id := range names {
		if delivered[id] != res.SinkCounts[id] {
			same = false
		}
	}
	fmt.Printf("handler deliveries match per-subscription counts: %v\n", same)
	fmt.Printf("sample ledger: %s=%d matches, %s=%d matches (canceled id %d kept its %d)\n",
		names[0], delivered[0],
		names[stateslice.QueryID(len(founding))], delivered[stateslice.QueryID(len(founding))],
		canceled[0], delivered[canceled[0]])
}
