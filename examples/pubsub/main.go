// Pubsub: a publish/subscribe service hosting dozens of subscriptions over
// the same two event streams, each subscription a window join with its own
// window size (the paper's Section 7.3 scenario, Table 4's Small-Large
// distribution). The example builds the Mem-Opt and CPU-Opt chains, compares
// them, and then migrates the running plan when subscriptions churn.
//
// Run with:
//
//	go run ./examples/pubsub [-subs 24] [-rate 40]
package main

import (
	"flag"
	"fmt"
	"log"

	"stateslice"
)

func main() {
	subs := flag.Int("subs", 24, "number of subscriptions (even, >= 4)")
	rate := flag.Float64("rate", 40, "per-stream event rate (tuples/sec)")
	flag.Parse()

	// Subscriptions cluster at short windows (breaking-news correlation)
	// and long windows (daily digests): the bimodal Small-Large shape.
	var queries []stateslice.Query
	h := *subs / 2
	for i := 1; i <= h; i++ {
		queries = append(queries, stateslice.Query{
			Name:   fmt.Sprintf("fresh-%d", i),
			Window: stateslice.Seconds(6 * float64(i) / float64(h)),
		})
	}
	for i := 1; i <= h; i++ {
		queries = append(queries, stateslice.Query{
			Name:   fmt.Sprintf("digest-%d", i),
			Window: stateslice.Seconds(24 + 6*float64(i)/float64(h)),
		})
	}
	w := stateslice.Workload{Queries: queries, Join: stateslice.FractionMatch{S: 0.025}}

	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: *rate, RateB: *rate,
		Duration: 60 * stateslice.Second,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mem-Opt: one slice per distinct window.
	memPlan, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	// CPU-Opt: Dijkstra merges the clustered windows.
	cpuPlan, err := stateslice.CPUOptPlan(w, stateslice.CPUOptParams{
		RateA: *rate, RateB: *rate, JoinSelectivity: 0.025, Csys: 3,
	}, stateslice.ChainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d subscriptions sharing one chain\n", len(queries))
	fmt.Printf("  Mem-Opt: %d sliced joins\n", len(memPlan.Slices()))
	fmt.Printf("  CPU-Opt: %d sliced joins (ends ", len(cpuPlan.Slices()))
	for i, e := range cpuPlan.Ends() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.1fs", e.ToSeconds())
	}
	fmt.Println(")")

	for name, p := range map[string]*stateslice.Plan{"Mem-Opt": memPlan.Plan, "CPU-Opt": cpuPlan.Plan} {
		res, err := stateslice.Run(p, input, stateslice.RunConfig{SampleEvery: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d comparisons + %d op invocations, avg state %.0f tuples, wall %.0f tuples/s\n",
			name, res.Meter.Comparisons(), res.Meter.Invocations, res.Memory.Avg, res.ServiceRate())
	}

	// Subscription churn: the shortest-window subscriber leaves, a new
	// one registers between two existing windows. Migrate the running
	// CPU-Opt chain accordingly (Section 5.3) without stopping the
	// stream.
	fmt.Println("\nsubscription churn: migrating the live chain")
	live, err := stateslice.CPUOptPlan(w, stateslice.CPUOptParams{
		RateA: *rate, RateB: *rate, JoinSelectivity: 0.025, Csys: 3,
	}, stateslice.ChainConfig{Migratable: true})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stateslice.NewSession(live.Plan, stateslice.RunConfig{SampleEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	half := len(input) / 2
	for _, tp := range input[:half] {
		if err := sess.Feed(tp); err != nil {
			log.Fatal(err)
		}
	}
	before := live.Ends()
	// Merge the first two slices (subscriber of the smallest boundary
	// left), then split the last slice (a new subscriber needs an
	// intermediate boundary).
	if err := live.MergeSlices(sess, 0); err != nil {
		log.Fatal(err)
	}
	last := len(live.Slices()) - 1
	startLast, endLast := live.Slices()[last].Range()
	mid := (startLast + endLast) / 2
	if err := live.SplitSlice(sess, last, mid); err != nil {
		log.Fatal(err)
	}
	for _, tp := range input[half:] {
		if err := sess.Feed(tp); err != nil {
			log.Fatal(err)
		}
	}
	res := sess.Finish()
	fmt.Printf("  boundaries before: %d slices, after: %d slices\n", len(before), len(live.Ends()))
	fmt.Printf("  run finished with %d results, %d order violations\n",
		res.TotalOutputs(), res.OrderViolations)

	// Sanity: a static run delivers the same answer set sizes.
	ref, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := stateslice.Run(ref.Plan, input, stateslice.RunConfig{SampleEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range res.SinkCounts {
		if res.SinkCounts[i] != refRes.SinkCounts[i] {
			same = false
		}
	}
	fmt.Printf("  per-subscription answers identical to an unmigrated run: %v\n", same)
}
