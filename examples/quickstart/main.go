// Quickstart: share two window-join queries with the state-slice chain.
//
// This is the paper's motivating example (Section 1) scaled to seconds:
//
//	Q1: SELECT A.* FROM Temperature A, Humidity B
//	    WHERE A.LocationId = B.LocationId               WINDOW 1 min
//	Q2: SELECT A.* FROM Temperature A, Humidity B
//	    WHERE A.LocationId = B.LocationId AND A.Value > Threshold
//	    WINDOW 60 min
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stateslice"
)

func main() {
	// Two continuous queries over the same join, windows 1s and 60s
	// (the paper's 1 min / 60 min compressed 60x), Q2 filtered to the
	// hottest 1% of readings.
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 1 * stateslice.Second},
			{Name: "Q2", Window: 60 * stateslice.Second, Filter: stateslice.Threshold{S: 0.01}},
		},
		Join: stateslice.Equijoin{},
	}

	// One Build call per strategy; MemOpt compiles the Mem-Opt chain:
	// two sliced joins, (0,1s] and (1s,60s], with the selection pushed
	// between them.
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Explain())

	// 90 virtual seconds of Poisson arrivals at 50 tuples/sec per stream,
	// 100 sensor locations. The generator is consumed as a Source, one
	// tuple at a time — nothing is materialized up front.
	gen := stateslice.GeneratorConfig{
		RateA: 50, RateB: 50,
		Duration:  90 * stateslice.Second,
		KeyDomain: 100,
		Seed:      1,
	}
	src, err := stateslice.GeneratorSource(gen)
	if err != nil {
		log.Fatal(err)
	}

	res, err := p.Run(src, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessed %d tuples (%.0f virtual seconds) in %s\n",
		res.Inputs, res.VirtualDuration.ToSeconds(), res.Wall)
	for i, n := range res.SinkCounts {
		fmt.Printf("  %s: %d results\n", w.QueryName(i), n)
	}
	fmt.Printf("state memory: avg %.0f tuples, peak %d tuples\n", res.Memory.Avg, res.Memory.Max)
	fmt.Printf("CPU: %d comparisons (%d probe, %d purge)\n",
		res.Meter.Comparisons(), res.Meter.Probe, res.Meter.Purge)

	// A few joined results from the filtered query.
	fmt.Println("\nfirst Q2 matches (hot temperature readings joined with humidity):")
	for i, r := range res.Results[1] {
		if i == 5 {
			break
		}
		fmt.Printf("  t=%-12s location=%-3d temp-value=%.3f (tuple %s)\n",
			r.Time, r.A.Key, r.A.Value, r)
	}

	// Compare against the naive shared plan (selection pull-up): same
	// Build entry point, different strategy. A fresh generator source
	// replays the identical input.
	pu, err := stateslice.Build(w, stateslice.PullUp)
	if err != nil {
		log.Fatal(err)
	}
	src2, err := stateslice.GeneratorSource(gen)
	if err != nil {
		log.Fatal(err)
	}
	puRes, err := pu.Run(src2, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive sharing (selection pull-up): avg %.0f state tuples, %d comparisons\n",
		puRes.Memory.Avg, puRes.Meter.Comparisons())
	fmt.Printf("state-slice saves %.0f%% memory and %.0f%% comparisons on this workload\n",
		100*(puRes.Memory.Avg-res.Memory.Avg)/puRes.Memory.Avg,
		100*float64(puRes.Meter.Comparisons()-res.Meter.Comparisons())/float64(puRes.Meter.Comparisons()))
}
