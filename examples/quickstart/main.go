// Quickstart: share two window-join queries with the state-slice chain.
//
// This is the paper's motivating example (Section 1) scaled to seconds,
// written in SliceQL, the declarative front-end: the query text compiles
// through the optimizer pass pipeline into exactly the plan a hand-built
// Workload produces.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stateslice"
)

// The motivating workload: both queries read the same equijoin of the
// temperature and humidity streams, with windows 1s and 60s (the paper's
// 1 min / 60 min compressed 60x) and Q2 filtered to the hottest 1% of
// readings.
const workload = `
	q1: SELECT * FROM temps JOIN hums ON temps.loc = hums.loc
	    WINDOW 1 s;
	q2: SELECT * FROM temps JOIN hums ON temps.loc = hums.loc
	    WHERE temps.value >= 0.99
	    WINDOW 60 s;
`

func main() {
	// One CompileQuery call parses the text and builds it; MemOpt compiles
	// the Mem-Opt chain: two sliced joins, (0,1s] and (1s,60s], with the
	// selection pushed between them. Explain includes the optimizer's pass
	// trace.
	p, err := stateslice.CompileQuery(workload, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Explain())

	// The same workload built by hand lands on a byte-identical plan — the
	// front-end and the Go API share one compilation pipeline.
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "q1", Window: 1 * stateslice.Second},
			{Name: "q2", Window: 60 * stateslice.Second, Filter: stateslice.Threshold{S: 1 - 0.99}},
		},
		Join: stateslice.Equijoin{},
	}
	hand, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		log.Fatal(err)
	}
	if hand.Explain() != p.Explain() {
		log.Fatal("parsed and hand-built plans diverge")
	}

	// 90 virtual seconds of Poisson arrivals at 50 tuples/sec per stream,
	// 100 sensor locations. The generator is consumed as a Source, one
	// tuple at a time — nothing is materialized up front.
	gen := stateslice.GeneratorConfig{
		RateA: 50, RateB: 50,
		Duration:  90 * stateslice.Second,
		KeyDomain: 100,
		Seed:      1,
	}
	src, err := stateslice.GeneratorSource(gen)
	if err != nil {
		log.Fatal(err)
	}

	res, err := p.Run(src, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessed %d tuples (%.0f virtual seconds) in %s\n",
		res.Inputs, res.VirtualDuration.ToSeconds(), res.Wall)
	for i, n := range res.SinkCounts {
		fmt.Printf("  %s: %d results\n", w.QueryName(i), n)
	}
	fmt.Printf("state memory: avg %.0f tuples, peak %d tuples\n", res.Memory.Avg, res.Memory.Max)
	fmt.Printf("CPU: %d comparisons (%d probe, %d purge)\n",
		res.Meter.Comparisons(), res.Meter.Probe, res.Meter.Purge)

	// A few joined results from the filtered query.
	fmt.Println("\nfirst q2 matches (hot temperature readings joined with humidity):")
	for i, r := range res.Results[1] {
		if i == 5 {
			break
		}
		fmt.Printf("  t=%-12s location=%-3d temp-value=%.3f (tuple %s)\n",
			r.Time, r.A.Key, r.A.Value, r)
	}

	// Compare against the naive shared plan (selection pull-up): same
	// query text, different strategy. A fresh generator source replays
	// the identical input.
	pu, err := stateslice.CompileQuery(workload, stateslice.PullUp)
	if err != nil {
		log.Fatal(err)
	}
	src2, err := stateslice.GeneratorSource(gen)
	if err != nil {
		log.Fatal(err)
	}
	puRes, err := pu.Run(src2, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive sharing (selection pull-up): avg %.0f state tuples, %d comparisons\n",
		puRes.Memory.Avg, puRes.Meter.Comparisons())
	fmt.Printf("state-slice saves %.0f%% memory and %.0f%% comparisons on this workload\n",
		100*(puRes.Memory.Avg-res.Memory.Avg)/puRes.Memory.Avg,
		100*float64(puRes.Meter.Comparisons()-res.Meter.Comparisons())/float64(puRes.Meter.Comparisons()))
}
