// Quickstart: share two window-join queries with the state-slice chain.
//
// This is the paper's motivating example (Section 1) scaled to seconds:
//
//	Q1: SELECT A.* FROM Temperature A, Humidity B
//	    WHERE A.LocationId = B.LocationId               WINDOW 1 min
//	Q2: SELECT A.* FROM Temperature A, Humidity B
//	    WHERE A.LocationId = B.LocationId AND A.Value > Threshold
//	    WINDOW 60 min
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stateslice"
)

func main() {
	// Two continuous queries over the same join, windows 1s and 60s
	// (the paper's 1 min / 60 min compressed 60x), Q2 filtered to the
	// hottest 1% of readings.
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 1 * stateslice.Second},
			{Name: "Q2", Window: 60 * stateslice.Second, Filter: stateslice.Threshold{S: 0.01}},
		},
		Join: stateslice.Equijoin{},
	}

	// The Mem-Opt chain: two sliced joins, (0,1s] and (1s,60s], with the
	// selection pushed between them.
	sp, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{Collect: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shared plan: chain of sliced window joins")
	for i, j := range sp.Slices() {
		start, end := j.Range()
		fmt.Printf("  slice %d: window range (%s, %s]\n", i+1, start, end)
	}

	// 90 virtual seconds of Poisson arrivals at 50 tuples/sec per stream,
	// 100 sensor locations.
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 50, RateB: 50,
		Duration:  90 * stateslice.Second,
		KeyDomain: 100,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := stateslice.Run(sp.Plan, input, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessed %d tuples (%.0f virtual seconds) in %s\n",
		res.Inputs, res.VirtualDuration.ToSeconds(), res.Wall)
	for i, sink := range sp.Sinks() {
		fmt.Printf("  %s: %d results\n", w.QueryName(i), sink.Count())
	}
	fmt.Printf("state memory: avg %.0f tuples, peak %d tuples\n", res.Memory.Avg, res.Memory.Max)
	fmt.Printf("CPU: %d comparisons (%d probe, %d purge)\n",
		res.Meter.Comparisons(), res.Meter.Probe, res.Meter.Purge)

	// A few joined results from the filtered query.
	fmt.Println("\nfirst Q2 matches (hot temperature readings joined with humidity):")
	for i, r := range sp.Sinks()[1].Results() {
		if i == 5 {
			break
		}
		fmt.Printf("  t=%-12s location=%-3d temp-value=%.3f (tuple %s)\n",
			r.Time, r.A.Key, r.A.Value, r)
	}

	// Compare against the naive shared plan (selection pull-up).
	pu, err := stateslice.PullUpPlan(w, false)
	if err != nil {
		log.Fatal(err)
	}
	puRes, err := stateslice.Run(pu, input, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive sharing (selection pull-up): avg %.0f state tuples, %d comparisons\n",
		puRes.Memory.Avg, puRes.Meter.Comparisons())
	fmt.Printf("state-slice saves %.0f%% memory and %.0f%% comparisons on this workload\n",
		100*(puRes.Memory.Avg-res.Memory.Avg)/puRes.Memory.Avg,
		100*float64(puRes.Meter.Comparisons()-res.Meter.Comparisons())/float64(puRes.Meter.Comparisons()))
}
