// Migration: watch the online maintenance of a state-slicing chain
// (Section 5.3 of the paper) in slow motion. A three-slice chain runs over a
// live stream; mid-run the chain is fully merged into one slice and later
// re-split, while the example tracks the window states moving between the
// sliced joins and verifies that no result is lost or duplicated.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"stateslice"
)

func main() {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 5 * stateslice.Second},
			{Name: "Q3", Window: 9 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.2},
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 40 * stateslice.Second, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	sp, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{Migratable: true})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stateslice.NewSession(sp.Plan, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(tag string) {
		fmt.Printf("%-28s", tag)
		total := 0
		for _, j := range sp.Slices() {
			s, e := j.Range()
			fmt.Printf("  (%.0fs,%.0fs]=%d", s.ToSeconds(), e.ToSeconds(), j.StateSize())
			total += j.StateSize()
		}
		fmt.Printf("   total=%d tuples\n", total)
	}

	feed := func(from, to int) {
		for _, tp := range input[from:to] {
			if err := sess.Feed(tp); err != nil {
				log.Fatal(err)
			}
		}
	}

	third := len(input) / 3
	feed(0, third)
	show("after 1/3 of the stream:")

	// Merge everything into a single slice. Merging concatenates the
	// window states; the queue between slices is drained first, so the
	// total tuple count is preserved exactly.
	fmt.Println("\n-> merge slices 2 and 3, then 1 and 2 (queue drained, states concatenated)")
	if err := sp.MergeSlices(sess, 1); err != nil {
		log.Fatal(err)
	}
	if err := sp.MergeSlices(sess, 0); err != nil {
		log.Fatal(err)
	}
	show("fully merged chain:")

	feed(third, 2*third)
	show("after 2/3 of the stream:")

	// Split back to the Mem-Opt layout. New slices start empty; the next
	// cross-purges of the shrunk slice push the out-of-range tuples
	// rightward, so the states refill without any recomputation.
	fmt.Println("\n-> split at 2s and 5s (new slices start empty and fill by purging)")
	if err := sp.SplitSlice(sess, 0, 2*stateslice.Second); err != nil {
		log.Fatal(err)
	}
	if err := sp.SplitSlice(sess, 1, 5*stateslice.Second); err != nil {
		log.Fatal(err)
	}
	show("immediately after split:")

	feed(2*third, len(input))
	show("end of stream:")

	res := sess.Finish()
	fmt.Printf("\ndelivered per query: %v (order violations: %d)\n",
		res.SinkCounts, res.OrderViolations)

	// Reference: the same stream without any migration.
	ref, err := stateslice.MemOptPlan(w, stateslice.ChainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := stateslice.Run(ref.Plan, input, stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static reference:        %v\n", refRes.SinkCounts)
	for i := range res.SinkCounts {
		if res.SinkCounts[i] != refRes.SinkCounts[i] {
			log.Fatalf("query %d lost or duplicated results across migration", i)
		}
	}
	fmt.Println("answers across two merges and two splits: exact")
}
