// Migration: watch the online maintenance of a state-slicing chain
// (Section 5.3 of the paper) in slow motion. A three-slice chain runs over
// a live stream; mid-run the chain is re-sliced twice with Plan.Migrate —
// first fully merged into one slice, later re-split to the Mem-Opt layout —
// while the example verifies that no result is lost or duplicated.
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"stateslice"
)

func main() {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 5 * stateslice.Second},
			{Name: "Q3", Window: 9 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.2},
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 30, RateB: 30, Duration: 40 * stateslice.Second, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One migratable Mem-Opt chain; Migrate is a first-class method of
	// the plan, no separate ChainPlan API needed.
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithMigratable())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(tag string) {
		fmt.Printf("%-28s chain:", tag)
		start := stateslice.Time(0)
		for _, e := range p.Ends() {
			fmt.Printf(" (%.0fs,%.0fs]", start.ToSeconds(), e.ToSeconds())
			start = e
		}
		fmt.Println()
	}

	feed := func(from, to int) {
		if err := sess.Consume(stateslice.SliceSource(input[from:to])); err != nil {
			log.Fatal(err)
		}
	}

	third := len(input) / 3
	feed(0, third)
	show("after 1/3 of the stream:")

	// Migrate to a single slice. The merges concatenate the window
	// states after draining the inter-slice queues, so the total tuple
	// count is preserved exactly.
	fmt.Println("\n-> Migrate(9s): merge everything into one slice")
	if err := p.Migrate([]stateslice.Time{9 * stateslice.Second}); err != nil {
		log.Fatal(err)
	}
	show("fully merged chain:")

	feed(third, 2*third)
	show("after 2/3 of the stream:")

	// Migrate back to the Mem-Opt layout. New slices start empty; the
	// next cross-purges of the shrunk slice push the out-of-range tuples
	// rightward, so the states refill without any recomputation.
	fmt.Println("\n-> Migrate(2s,5s,9s): split back to one slice per window")
	to := []stateslice.Time{2 * stateslice.Second, 5 * stateslice.Second, 9 * stateslice.Second}
	if err := p.Migrate(to); err != nil {
		log.Fatal(err)
	}
	show("immediately after split:")

	feed(2*third, len(input))
	show("end of stream:")

	res := sess.Finish()
	fmt.Printf("\ndelivered per query: %v (order violations: %d)\n",
		res.SinkCounts, res.OrderViolations)

	// Reference: the same stream without any migration.
	ref, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static reference:        %v\n", refRes.SinkCounts)
	for i := range res.SinkCounts {
		if res.SinkCounts[i] != refRes.SinkCounts[i] {
			log.Fatalf("query %d lost or duplicated results across migration", i)
		}
	}
	fmt.Println("answers across two migrations: exact")
}
