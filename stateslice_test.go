package stateslice_test

import (
	"testing"

	"stateslice"
)

// The facade tests double as compile-time checks that the public API stays
// usable end to end, mirroring the README quick start.

func exampleWorkload() stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 8 * stateslice.Second, Filter: stateslice.Threshold{S: 0.4}},
		},
		Join: stateslice.FractionMatch{S: 0.15},
	}
}

func exampleInput(t *testing.T) []*stateslice.Tuple {
	t.Helper()
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 30 * stateslice.Second, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

func TestQuickStartMemOpt(t *testing.T) {
	w := exampleWorkload()
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 2 {
		t.Fatalf("Mem-Opt chain has %d slices, want one per distinct window", got)
	}
	res, err := p.Run(stateslice.SliceSource(exampleInput(t)), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOutputs() == 0 {
		t.Fatal("no results produced")
	}
	if res.OrderViolations != 0 {
		t.Fatal("results out of order")
	}
	if res.SinkCounts[0] == 0 || res.SinkCounts[1] == 0 {
		t.Fatalf("per-query counts: %v", res.SinkCounts)
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)
	model := stateslice.CostModel{
		RateA: 25, RateB: 25,
		JoinSelectivity: 0.15,
		Csys:            stateslice.DefaultCsys,
		TupleKB:         stateslice.DefaultTupleKB,
	}
	counts := make(map[stateslice.Strategy][]uint64)
	for _, s := range stateslice.Strategies() {
		var opts []stateslice.Option
		if s == stateslice.CPUOpt {
			opts = append(opts, stateslice.WithCostParams(model))
		}
		p, err := stateslice.Build(w, s, opts...)
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		counts[s] = res.SinkCounts
	}
	want := counts[stateslice.Unshared]
	for s, got := range counts {
		for qi := range want {
			if got[qi] != want[qi] {
				t.Errorf("%s query %d delivered %d results, unshared %d", s, qi, got[qi], want[qi])
			}
		}
	}
}

func TestSessionMigration(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range input {
		if i == len(input)/2 {
			if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Feed(tp); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()
	if res.OrderViolations != 0 {
		t.Fatal("migration broke ordering")
	}
	// The merged chain has one slice serving both windows.
	if got := len(p.Ends()); got != 1 {
		t.Fatalf("%d slices after merge", got)
	}
}

func TestCostModelFacade(t *testing.T) {
	p := stateslice.CostParams{
		LambdaA: 50, LambdaB: 50, W1: 60, W2: 3600,
		TupleKB: 0.1, SelSigma: 0.01, SelJoin: 0.1,
	}
	sl, pu, pd := stateslice.StateSliceCost(p), stateslice.PullUpCost(p), stateslice.PushDownCost(p)
	if sl.MemoryKB >= pu.MemoryKB || sl.CPU >= pu.CPU {
		t.Error("state-slice must beat pull-up on the motivating example")
	}
	if sl.MemoryKB >= pd.MemoryKB || sl.CPU >= pd.CPU {
		t.Error("state-slice must beat push-down on the motivating example")
	}
	s := stateslice.ComputeSavings(60.0/3600, 0.01, 0.1)
	if s.MemVsPullUp < 0.45 {
		t.Errorf("motivating-example memory saving %.2f, want near the 50%% the paper reports", s.MemVsPullUp)
	}
}

func TestOptimizerFacade(t *testing.T) {
	qs := []stateslice.QuerySpec{
		{Window: 1, Sel: 1}, {Window: 1.5, Sel: 1}, {Window: 30, Sel: 1},
	}
	if got := stateslice.MemOptEnds(qs); len(got) != 3 {
		t.Errorf("MemOptEnds = %v", got)
	}
	res, err := stateslice.CPUOptEnds(qs, stateslice.ChainParams{
		LambdaA: 50, LambdaB: 50, SelJoin: 0.01, Csys: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ends) >= 3 {
		t.Errorf("CPU-Opt should merge the clustered windows: %v", res.Ends)
	}
	steps, err := stateslice.PlanMigration([]float64{1, 1.5, 30}, res.Ends)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Error("migration to a merged chain needs steps")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.15},
	}
	input := exampleInput(t)
	cp, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithConcurrency())
	if err != nil {
		t.Fatal(err)
	}
	conc, err := cp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range w.Queries {
		if conc.SinkCounts[qi] != seq.SinkCounts[qi] {
			t.Errorf("query %d: concurrent %d vs sequential %d", qi, conc.SinkCounts[qi], seq.SinkCounts[qi])
		}
	}
	if conc.OrderViolations != 0 {
		t.Error("concurrent execution broke ordering")
	}
	// Filtered workloads are rejected.
	if _, err := stateslice.Build(exampleWorkload(), stateslice.MemOpt, stateslice.WithConcurrency()); err == nil {
		t.Error("filtered workload must be rejected")
	}
}

func TestBuildWithEnds(t *testing.T) {
	w := exampleWorkload()
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithEnds(8*stateslice.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ends()) != 1 {
		t.Fatal("explicit single boundary must build one slice")
	}
	if _, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithEnds(3*stateslice.Second)); err == nil {
		t.Error("boundary below the largest window must fail")
	}
}
