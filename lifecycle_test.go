package stateslice_test

// Lifecycle regression tests: every way a session can end early — a
// fail-fast Feed error followed by abandonment, an explicit Close
// mid-stream, a Close racing an in-flight Attach barrier — must release
// every goroutine the executor spawned. Leaks are caught by comparing
// runtime.NumGoroutine against a baseline with a retry deadline (the
// stdlib-only stand-in for a leak detector), dumping all stacks on failure.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"stateslice"
	"stateslice/internal/fault"
)

// sourceFunc adapts a pull function to the Source interface.
type sourceFunc func() (*stateslice.Tuple, error)

func (f sourceFunc) Next() (*stateslice.Tuple, error) { return f() }

// goroutineBase samples the goroutine count after letting any stragglers
// from a previous test finish dying.
func goroutineBase() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	return runtime.NumGoroutine()
}

// assertGoroutinesReleased retries for up to 5s waiting for the goroutine
// count to fall back to the baseline (teardown goroutines and context
// AfterFunc callbacks die asynchronously). On timeout it dumps every
// goroutine stack, which names the leaked runner directly.
func assertGoroutinesReleased(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLifecycleAbandonedAfterFeedError is the fail-fast leak regression: a
// replica failure surfaces on Feed, the caller drops the session without
// Finish or Close (the natural reaction to a fatal error), and every
// executor goroutine must still unwind — the first surfacing aborts the run
// in place.
func TestLifecycleAbandonedAfterFeedError(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	injected := errors.New("lifecycle: replica fault")
	var fed atomic.Int64
	restore := fault.Inject(fault.ReplicaFeed, func(int) error {
		if fed.Add(1) >= 40 {
			return injected
		}
		return nil
	})
	defer restore()

	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var feedErr error
	for _, tup := range input {
		if feedErr = sess.Feed(tup); feedErr != nil {
			break
		}
	}
	if !errors.Is(feedErr, injected) {
		t.Fatalf("the replica fault never surfaced on Feed: %v", feedErr)
	}
	sess = nil // abandon: no Finish, no Close
	assertGoroutinesReleased(t, base)
}

// TestLifecycleCloseMidStream closes a sharded session from another
// goroutine while Consume is still feeding: Consume must return an
// ErrClosed-classified error promptly and all replica, merge, and feed
// goroutines must be released.
func TestLifecycleCloseMidStream(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	for _, shards := range []int{1, 4} {
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fedSome := make(chan struct{})
		var once atomic.Bool
		src, err := stateslice.GeneratorSource(stateslice.GeneratorConfig{
			RateA: 25, RateB: 25, Duration: 3600 * stateslice.Second, KeyDomain: 12, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		consumeErr := make(chan error, 1)
		go func() {
			consumeErr <- sess.Consume(sourceFunc(func() (*stateslice.Tuple, error) {
				if once.CompareAndSwap(false, true) {
					close(fedSome)
				}
				return src.Next()
			}))
		}()
		<-fedSome
		if err := sess.Close(context.Background()); err != nil {
			t.Fatalf("Close mid-stream returned %v, want nil", err)
		}
		if err := <-consumeErr; !errors.Is(err, stateslice.ErrClosed) {
			t.Fatalf("Consume against a closed session returned %v, want ErrClosed", err)
		}
		if err := sess.Close(context.Background()); !errors.Is(err, stateslice.ErrClosed) {
			t.Fatalf("second Close returned %v, want ErrClosed", err)
		}
	}
	_ = input
	assertGoroutinesReleased(t, base)
}

// TestLifecycleCloseDuringAttachBarrier closes the session while an Attach
// admission barrier is blocked inside every replica: the Attach must abort
// ErrClosed-classified instead of deadlocking, and the unwinding must
// complete once the replicas unblock.
func TestLifecycleCloseDuringAttachBarrier(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	restore := fault.Inject(fault.BarrierApply, func(int) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer restore()
	attachErr := make(chan error, 1)
	go func() {
		_, err := sess.Attach(stateslice.Query{Name: "Q3", Window: 4 * stateslice.Second})
		attachErr <- err
	}()
	<-entered
	closeDone := make(chan error, 1)
	go func() { closeDone <- sess.Close(context.Background()) }()
	if err := <-attachErr; !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("in-flight Attach returned %v, want an ErrClosed-classified abort", err)
	}
	close(release)
	if err := <-closeDone; err != nil {
		t.Fatalf("Close during an Attach barrier returned %v, want nil", err)
	}
	assertGoroutinesReleased(t, base)
}

// TestLifecycleRestartLoopReleasesGoroutines drives a supervised session
// through several restart cycles and asserts the rebuild loop leaks nothing:
// every dead replica's runner and the rebuilt runner that replaced it must
// unwind with the session.
func TestLifecycleRestartLoopReleasesGoroutines(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	var fed atomic.Int64
	restore := fault.Inject(fault.ReplicaFeed, func(int) error {
		if fed.Add(1)%250 == 0 {
			panic("lifecycle: periodic replica crash")
		}
		return nil
	})
	defer restore()
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithRecovery(testRestart(16)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatalf("Run through the restart loop returned %v, want nil", err)
	}
	if res.Recovery == nil || res.Recovery.Restarts < 2 {
		t.Fatalf("Result.Recovery = %+v, want several restarts; the loop check is vacuous", res.Recovery)
	}
	assertGoroutinesReleased(t, base)
}

// TestLifecycleCheckpointRacingClose races Checkpoint against Close from
// another goroutine: whichever wins, the loser must return an error (or a
// valid snapshot) promptly instead of deadlocking, and everything unwinds.
func TestLifecycleCheckpointRacingClose(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	for round := 0; round < 5; round++ {
		p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := p.NewSession(stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Consume(stateslice.SliceSource(input[:300])); err != nil {
			t.Fatal(err)
		}
		cpDone := make(chan error, 1)
		go func() {
			cp, err := sess.Checkpoint(context.Background())
			if err == nil && cp == nil {
				err = errors.New("Checkpoint returned neither a snapshot nor an error")
			}
			cpDone <- err
		}()
		closeDone := make(chan error, 1)
		go func() { closeDone <- sess.Close(context.Background()) }()
		if err := <-cpDone; err != nil && !errors.Is(err, stateslice.ErrClosed) {
			t.Fatalf("round %d: Checkpoint racing Close returned %v, want a snapshot or an ErrClosed-classified abort", round, err)
		}
		if err := <-closeDone; err != nil && !errors.Is(err, stateslice.ErrClosed) {
			t.Fatalf("round %d: Close returned %v", round, err)
		}
	}
	assertGoroutinesReleased(t, base)
}

// TestLifecycleRestoreThenAttach restores a sharded checkpoint and admits a
// new query on the restored session: the restored chain must accept live
// admission like any migratable chain, and the session must unwind cleanly.
func TestLifecycleRestoreThenAttach(t *testing.T) {
	base := goroutineBase()
	input := chaosInput(t)
	opts := []stateslice.Option{stateslice.WithCollect(),
		stateslice.WithShards(2), stateslice.WithMigratable()}
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	half := len(input) / 2
	if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
		t.Fatal(err)
	}
	cp, err := sess.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sess.Finish()
	sess.Close(context.Background())

	rp, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		append([]stateslice.Option{stateslice.WithRestore(cp)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	rsess, err := rp.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := rsess.Attach(stateslice.Query{Name: "Qlate", Window: 4 * stateslice.Second})
	if err != nil {
		t.Fatalf("Attach on a restored session: %v", err)
	}
	if err := rsess.Consume(stateslice.SliceSource(input[half:])); err != nil {
		t.Fatal(err)
	}
	res := rsess.Finish()
	if res.Err != nil {
		t.Fatalf("restored session error: %v", res.Err)
	}
	if len(res.Results[id]) == 0 {
		t.Fatal("the query attached after restore produced no results")
	}
	rsess.Close(context.Background())
	assertGoroutinesReleased(t, base)
}

// TestLifecycleCloseDuringRebalanceBarrier closes the session while every
// replica is blocked inside the rebalance rebuild barrier: the in-flight
// Rebalance must abort with an ErrClosed-classified error instead of
// deadlocking, Close with a too-short context reports the deadline while the
// teardown keeps unwinding, and once the replicas unblock everything is
// released.
func TestLifecycleCloseDuringRebalanceBarrier(t *testing.T) {
	base := goroutineBase()
	input := skewedChaosInput(t)
	p, err := stateslice.Build(bandWorkloadAPI(1), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithKeyRange(0, 11))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the skewed half first: a balanced feed would no-op the plan before
	// any replica reaches the blocking hook.
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	restore := fault.Inject(fault.RebalanceApply, func(int) error {
		entered <- struct{}{}
		<-release
		return nil
	})
	defer restore()
	rebErr := make(chan error, 1)
	go func() {
		_, err := sess.Rebalance(context.Background())
		rebErr <- err
	}()
	<-entered // at least one replica is blocked mid-rebuild

	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = sess.Close(shortCtx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close against blocked replicas returned %v, want the context deadline", err)
	}
	if err := <-rebErr; !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("in-flight Rebalance returned %v, want an ErrClosed-classified abort", err)
	}
	close(release)
	if err := sess.Close(context.Background()); !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("second Close returned %v, want ErrClosed", err)
	}
	assertGoroutinesReleased(t, base)
}

// TestLifecycleAbandonedAfterRebalanceError drops the session without Finish
// or Close after a rebalance rebuild fails — the natural reaction to a fatal
// error — and every executor goroutine must still unwind.
func TestLifecycleAbandonedAfterRebalanceError(t *testing.T) {
	base := goroutineBase()
	input := skewedChaosInput(t)
	injected := errors.New("lifecycle: rebuild fault")
	restore := fault.Inject(fault.RebalanceApply, func(int) error { return injected })
	defer restore()
	p, err := stateslice.Build(bandWorkloadAPI(1), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithKeyRange(0, 11))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Rebalance(context.Background()); !errors.Is(err, injected) {
		t.Fatalf("Rebalance returned %v, want the injected rebuild fault", err)
	}
	sess = nil // abandon: no Finish, no Close
	assertGoroutinesReleased(t, base)
}

// TestLifecycleSequentialClose pins the sequential session's Close
// semantics: a clean Close returns nil, later Feeds and Closes report
// ErrClosed, and Finish classifies the aborted run without flushing.
func TestLifecycleSequentialClose(t *testing.T) {
	input := chaosInput(t)
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:200])); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("Close returned %v, want nil", err)
	}
	if err := sess.Feed(input[200]); !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("Feed after Close returned %v, want ErrClosed", err)
	}
	if err := sess.Close(context.Background()); !errors.Is(err, stateslice.ErrClosed) {
		t.Fatalf("second Close returned %v, want ErrClosed", err)
	}
	res := sess.Finish()
	if !errors.Is(res.Err, stateslice.ErrClosed) {
		t.Fatalf("Result.Err = %v, want the ErrClosed classification", res.Err)
	}
}
