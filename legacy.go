package stateslice

// The deprecated pre-Build API: five per-strategy constructors returning
// two incompatible plan shapes (*ChainPlan vs *ExecPlan), batch-only
// execution, and free functions for what are now Plan methods. The wrappers
// keep every old function name compiling unchanged; the one renaming
// callers must absorb is the raw plan type, formerly `Plan`, now `ExecPlan`
// (the `Plan` name belongs to the unified interface returned by Build). New
// code should use Build, the Plan interface, and Source/Sink streaming.

import (
	"fmt"

	"stateslice/internal/chain"
	"stateslice/internal/cost"
	"stateslice/internal/engine"
	"stateslice/internal/pipeline"
	"stateslice/internal/plan"
	"stateslice/internal/workload"
)

// MemOptPlan builds the memory-optimal state-slice chain for the workload:
// one sliced join per distinct query window (Section 5.1 of the paper;
// Theorems 3 and 4 prove memory optimality with and without selections).
//
// Deprecated: use Build(w, MemOpt, ...).
func MemOptPlan(w Workload, cfg ChainConfig) (*ChainPlan, error) {
	cfg.Ends = nil
	if cfg.Name == "" {
		cfg.Name = "state-slice(mem-opt)"
	}
	return plan.BuildStateSlice(w, cfg)
}

// CPUOptParams carries the cost-model inputs of the CPU-optimal chain
// build-up (Section 5.2). Zero values of JoinSelectivity and Csys are
// silently rewritten to defaults, which makes an explicit 0 inexpressible.
//
// Deprecated: use CostModel with WithCostParams, whose values are taken
// verbatim and validated instead of silently defaulted.
type CPUOptParams struct {
	// RateA and RateB are the expected stream rates in tuples/sec.
	RateA, RateB float64
	// JoinSelectivity is S1; zero defaults to DefaultJoinSelectivity.
	JoinSelectivity float64
	// Csys is the per-tuple-per-operator overhead factor; zero defaults
	// to DefaultCsys.
	Csys float64
}

// CPUOptPlan builds the CPU-optimal state-slice chain: adjacent slices are
// merged whenever the saved purge and scheduling overhead outweighs the
// added routing cost, solved as a shortest path with Dijkstra's algorithm
// (Section 5.2; Section 6.2 with selections).
//
// Deprecated: use Build(w, CPUOpt, WithCostParams(m)).
func CPUOptPlan(w Workload, p CPUOptParams, cfg ChainConfig) (*ChainPlan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if p.JoinSelectivity == 0 {
		p.JoinSelectivity = DefaultJoinSelectivity
	}
	if p.Csys == 0 {
		p.Csys = DefaultCsys
	}
	res, err := chain.CPUOptEnds(workload.Specs(w), cost.ChainParams{
		LambdaA: p.RateA,
		LambdaB: p.RateB,
		TupleKB: DefaultTupleKB,
		SelJoin: p.JoinSelectivity,
		Csys:    p.Csys,
	})
	if err != nil {
		return nil, err
	}
	cfg.Ends = workload.EndsToTimes(res.Ends)
	if cfg.Name == "" {
		cfg.Name = "state-slice(cpu-opt)"
	}
	return plan.BuildStateSlice(w, cfg)
}

// ChainPlanWithEnds builds a state-slice chain with explicit slice
// boundaries (ascending, the last equal to the largest query window).
//
// Deprecated: use Build(w, MemOpt, WithEnds(ends...)).
func ChainPlanWithEnds(w Workload, ends []Time, cfg ChainConfig) (*ChainPlan, error) {
	cfg.Ends = ends
	return plan.BuildStateSlice(w, cfg)
}

// PullUpPlan builds the naive shared plan with selection pull-up
// (Section 3.1): one largest-window join plus a router.
//
// Deprecated: use Build(w, PullUp, ...).
func PullUpPlan(w Workload, collect bool) (*ExecPlan, error) { return plan.BuildPullUp(w, collect) }

// PushDownPlan builds the stream-partition plan with selection push-down
// (Section 3.2): split, per-partition joins, router and union.
//
// Deprecated: use Build(w, PushDown, ...).
func PushDownPlan(w Workload, collect bool) (*ExecPlan, error) { return plan.BuildPushDown(w, collect) }

// UnsharedPlan builds one independent plan per query (Figure 2).
//
// Deprecated: use Build(w, Unshared, ...).
func UnsharedPlan(w Workload, collect bool) (*ExecPlan, error) { return plan.BuildUnshared(w, collect) }

// Run executes a raw plan over a pre-materialized input batch.
//
// Deprecated: use Plan.Run with a Source (SliceSource for batches).
func Run(p *ExecPlan, input []*Tuple, cfg RunConfig) (*Result, error) {
	return engine.Run(p, input, cfg)
}

// ConcurrentResult reports a concurrent chain execution.
//
// Deprecated: Build(w, MemOpt, WithConcurrency()) plans report the unified
// Result type from Plan.Run; only the deprecated RunChainConcurrent still
// returns this shape.
type ConcurrentResult = pipeline.Result

// RunChainConcurrent executes the workload's Mem-Opt chain with one
// goroutine per sliced join connected by channels — the asynchronous
// scheduling regime whose correctness Lemma 1 guarantees and Section 9 of
// the paper points at for distributed execution. Results are identical to
// the sequential engine's; the workload must not carry selections (use the
// sequential engine for filtered chains).
//
// Deprecated: use Build(w, MemOpt, WithConcurrency()) and Plan.Run.
func RunChainConcurrent(w Workload, input []*Tuple, collect bool) (*ConcurrentResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var windows []Time
	for i, q := range w.Queries {
		if q.HasFilter() || q.HasFilterB() {
			return nil, fmt.Errorf("stateslice: concurrent chains support unfiltered queries only (query %d is filtered)", i)
		}
		windows = append(windows, q.Window)
	}
	return pipeline.RunChain(windows, w.Join, input, collect)
}

// EnableHashProbing switches every regular window join in the plan from
// nested-loop probing (the paper's cost model) to hash-index probing, the
// variant the paper cites from Kang et al. [14]. It must be called before
// the plan processes any tuple and requires an equijoin predicate. Plans
// that contain no eligible regular window join — state-slice chains, whose
// sliced joins are always nested-loop — are reported as an error instead of
// silently left unprobed.
//
// Deprecated: use Build(..., WithHashProbing()).
func EnableHashProbing(p *ExecPlan) error { return enableHashProbing(p) }

// EngineSession is the sequential engine's concrete session. Raw-plan
// helpers (ChainPlan.MergeSlices / SplitSlice) take it directly.
//
// Deprecated: use the Session interface returned by Plan.NewSession, which
// adds live query admission (Attach / Detach) on top of the engine session.
type EngineSession = engine.Session

// NewSession prepares an incremental run over a raw plan; use it to Feed
// tuples one at a time and migrate chain plans mid-stream.
//
// Deprecated: use Plan.NewSession.
func NewSession(p *ExecPlan, cfg RunConfig) (*EngineSession, error) { return engine.NewSession(p, cfg) }
