module stateslice

go 1.24
