package stateslice_test

// Tests of the WithShards execution path through the public API: build-time
// validation of executor/option conflicts, byte-identical sharded execution
// across shard counts, sessions with mid-stream migration, and streaming
// sinks.

import (
	"strings"
	"sync"
	"testing"

	"stateslice"
)

// equijoinWorkload is the sharding-eligible example: same windows and
// filters as exampleWorkload, but joined on the key attribute.
func equijoinWorkload() stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 8 * stateslice.Second, Filter: stateslice.Threshold{S: 0.4}},
		},
		Join: stateslice.Equijoin{},
	}
}

// keyedInput generates a keyed input for equijoin workloads.
func keyedInput(t *testing.T) []*stateslice.Tuple {
	t.Helper()
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 30 * stateslice.Second, KeyDomain: 12, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// TestWithShardsValidation pins the build-time rules: exactly one executor
// per plan, chain strategies only, key-partitionable joins only.
func TestWithShardsValidation(t *testing.T) {
	eq := equijoinWorkload()
	for _, tc := range []struct {
		name string
		w    stateslice.Workload
		s    stateslice.Strategy
		opts []stateslice.Option
	}{
		{"zero shards", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(0)}},
		{"negative shards", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(-2)}},
		{"non-equijoin predicate", exampleWorkload(), stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2)}},
		{"non-chain strategy", eq, stateslice.PullUp, []stateslice.Option{stateslice.WithShards(2)}},
		{"with concurrency", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2), stateslice.WithConcurrency()}},
		{"with hash probing", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2), stateslice.WithHashProbing()}},
		{"zero assembly workers", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2), stateslice.WithAssemblyWorkers(0)}},
		{"assembly workers without shards", eq, stateslice.MemOpt, []stateslice.Option{stateslice.WithAssemblyWorkers(2)}},
	} {
		if _, err := stateslice.Build(tc.w, tc.s, tc.opts...); err == nil {
			t.Errorf("%s: Build must fail", tc.name)
		}
	}

	// The compatible combinations build.
	for _, opts := range [][]stateslice.Option{
		{stateslice.WithShards(1)},
		{stateslice.WithShards(4), stateslice.WithBatchSize(8)},
		{stateslice.WithShards(4), stateslice.WithMigratable()},
		{stateslice.WithShards(2), stateslice.WithEnds(8 * stateslice.Second)},
		{stateslice.WithShards(2), stateslice.WithAssemblyWorkers(3)},
	} {
		if _, err := stateslice.Build(eq, stateslice.MemOpt, opts...); err != nil {
			t.Errorf("compatible options rejected: %v", err)
		}
	}
}

// TestWithShardsByteIdentical runs the equijoin workload sharded at every
// p and compares per-query result sequences byte-for-byte against the
// sequential engine, including batched replicas and the CPU-Opt layout.
func TestWithShardsByteIdentical(t *testing.T) {
	w := equijoinWorkload()
	input := keyedInput(t)

	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.TotalOutputs() == 0 {
		t.Fatal("reference produced no results; the equivalence check is vacuous")
	}
	want := renderResults(refRes.Results)

	for _, p := range []int{1, 2, 4, 8} {
		for _, k := range []int{0, 7} {
			opts := []stateslice.Option{stateslice.WithCollect(), stateslice.WithShards(p)}
			if k != 0 {
				opts = append(opts, stateslice.WithBatchSize(k))
			}
			sp, err := stateslice.Build(w, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			res, err := sp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			if res.OrderViolations != 0 {
				t.Errorf("p=%d k=%d: %d order violations", p, k, res.OrderViolations)
			}
			if got := renderResults(res.Results); got != want {
				t.Errorf("p=%d k=%d: sharded results differ from the sequential engine", p, k)
			}
		}
	}

	// CPU-Opt replicas shard the same way.
	model := stateslice.DefaultCostModel()
	cp, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCollect(),
		stateslice.WithShards(3), stateslice.WithCostParams(model))
	if err != nil {
		t.Fatal(err)
	}
	cpRef, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCollect(),
		stateslice.WithCostParams(model))
	if err != nil {
		t.Fatal(err)
	}
	cpRefRes, err := cpRef.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cpRes, err := cp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResults(cpRes.Results), renderResults(cpRefRes.Results); got != want {
		t.Error("sharded CPU-Opt results differ from the sequential CPU-Opt chain")
	}
}

// TestWithShardsFastPath pins the unfiltered Mem-Opt shape — the build
// auto-selects the slice-merge fast path there — against the sequential
// engine, byte for byte.
func TestWithShardsFastPath(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 5 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	input := keyedInput(t)
	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(refRes.Results)
	for _, p := range []int{1, 3, 8} {
		for _, workers := range []int{0, 1, 2, 3} {
			opts := []stateslice.Option{stateslice.WithCollect(), stateslice.WithShards(p)}
			if workers != 0 {
				opts = append(opts, stateslice.WithAssemblyWorkers(workers))
			}
			sp, err := stateslice.Build(w, stateslice.MemOpt, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if res.OrderViolations != 0 {
				t.Errorf("p=%d w=%d: %d order violations", p, workers, res.OrderViolations)
			}
			if got := renderResults(res.Results); got != want {
				t.Errorf("p=%d w=%d: fast-path sharded results differ from the sequential engine", p, workers)
			}
		}
	}
}

// TestWithShardsSessionMigrate drives a sharded session with a mid-stream
// migration through the Plan interface and compares against a static run.
func TestWithShardsSessionMigrate(t *testing.T) {
	w := equijoinWorkload()
	input := keyedInput(t)

	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(),
		stateslice.WithShards(4), stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err == nil {
		t.Error("Migrate without a session must fail")
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	half := len(input) / 2
	if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
		t.Fatal(err)
	}
	// Merge to one slice, then split at a boundary the chain never had.
	if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 1 {
		t.Fatalf("after merge migration: %d slices", got)
	}
	if err := p.Migrate([]stateslice.Time{3 * stateslice.Second, 8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 2 {
		t.Fatalf("after split migration: %d slices", got)
	}
	if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatalf("clean sharded session reported an error: %v", res.Err)
	}
	if res.OrderViolations != 0 {
		t.Error("sharded migration broke ordering")
	}

	// Reference 1: a sequential session applying the identical migrations
	// at the identical stream position must match byte-for-byte.
	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(), stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := ref.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSess.Consume(stateslice.SliceSource(input[:half])); err != nil {
		t.Fatal(err)
	}
	if err := ref.Migrate([]stateslice.Time{8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Migrate([]stateslice.Time{3 * stateslice.Second, 8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if err := refSess.Consume(stateslice.SliceSource(input[half:])); err != nil {
		t.Fatal(err)
	}
	refRes := refSess.Finish()
	if got, want := renderResults(res.Results), renderResults(refRes.Results); got != want {
		t.Error("sharded migrated results differ from the sequential session with identical migrations")
	}

	// Reference 2: migration must not lose or duplicate results — the
	// per-query counts match the static chain's.
	static, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	staticRes, err := static.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range res.SinkCounts {
		if res.SinkCounts[qi] != staticRes.SinkCounts[qi] {
			t.Errorf("query %d: sharded migrated run delivered %d results, static %d",
				qi, res.SinkCounts[qi], staticRes.SinkCounts[qi])
		}
	}
}

// bandWorkloadAPI is the band-sharding example: a proximity join
// |A.Key - B.Key| <= width over the keyedInput domain.
func bandWorkloadAPI(width int64) stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "Q1", Window: 2 * stateslice.Second},
			{Name: "Q2", Window: 8 * stateslice.Second},
		},
		Join: stateslice.BandJoin{B: width},
	}
}

// TestWithShardsBandValidation pins the build-time rules of band-partitioned
// sharding: band predicates are legal with WithShards exactly when the key
// domain is declared, WithKeyRange is rejected anywhere else, and a
// predicate that is neither key- nor band-partitionable still fails with a
// clear error.
func TestWithShardsBandValidation(t *testing.T) {
	band := bandWorkloadAPI(1)
	for _, tc := range []struct {
		name    string
		w       stateslice.Workload
		opts    []stateslice.Option
		wantSub string
	}{
		{"band without key range", band,
			[]stateslice.Option{stateslice.WithShards(2)}, "WithKeyRange"},
		{"key range without shards", band,
			[]stateslice.Option{stateslice.WithKeyRange(0, 11)}, "WithShards"},
		{"key range on an equijoin", equijoinWorkload(),
			[]stateslice.Option{stateslice.WithShards(2), stateslice.WithKeyRange(0, 11)}, "hash-partitioned"},
		{"empty key range", band,
			[]stateslice.Option{stateslice.WithShards(2), stateslice.WithKeyRange(5, 4)}, "min <= max"},
		{"negative band width", bandWorkloadAPI(-1),
			[]stateslice.Option{stateslice.WithShards(2), stateslice.WithKeyRange(0, 11)}, "partitionable"},
		{"unpartitionable predicate", exampleWorkload(),
			[]stateslice.Option{stateslice.WithShards(2)}, "band-partitionable"},
	} {
		_, err := stateslice.Build(tc.w, stateslice.MemOpt, tc.opts...)
		if err == nil {
			t.Errorf("%s: Build must fail", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	if _, err := stateslice.Build(band, stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithKeyRange(0, 11)); err != nil {
		t.Errorf("band predicate with WithShards and WithKeyRange must build: %v", err)
	}
}

// TestWithShardsBandByteIdentical runs band workloads sharded through the
// public API across p ∈ {1,2,4,8} and B ∈ {0, 1, large} and compares the
// per-query sequences byte-for-byte against the sequential engine; the
// B = 0 runs are additionally compared against the Equijoin workload's
// results, which they must reproduce exactly.
func TestWithShardsBandByteIdentical(t *testing.T) {
	input := keyedInput(t)
	const dom = 12

	eqRef, err := stateslice.Build(stateslice.Workload{
		Queries: bandWorkloadAPI(0).Queries,
		Join:    stateslice.Equijoin{},
	}, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	eqRes, err := eqRef.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantEquijoin := renderResults(eqRes.Results)

	for _, width := range []int64{0, 1, 100} {
		w := bandWorkloadAPI(width)
		ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
		if err != nil {
			t.Fatal(err)
		}
		refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if refRes.TotalOutputs() == 0 {
			t.Fatalf("B=%d: reference produced no results; the equivalence check is vacuous", width)
		}
		want := renderResults(refRes.Results)
		if width == 0 && want != wantEquijoin {
			t.Error("sequential BandJoin{0} differs from Equijoin")
		}
		for _, p := range []int{1, 2, 4, 8} {
			sp, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(),
				stateslice.WithShards(p), stateslice.WithKeyRange(0, dom-1))
			if err != nil {
				t.Fatalf("B=%d p=%d: %v", width, p, err)
			}
			res, err := sp.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
			if err != nil {
				t.Fatalf("B=%d p=%d: %v", width, p, err)
			}
			if res.OrderViolations != 0 {
				t.Errorf("B=%d p=%d: %d order violations", width, p, res.OrderViolations)
			}
			if got := renderResults(res.Results); got != want {
				t.Errorf("B=%d p=%d: band-sharded results differ from the sequential engine", width, p)
			}
			if width == 0 {
				if got := renderResults(res.Results); got != wantEquijoin {
					t.Errorf("p=%d: band-sharded B=0 results differ from the Equijoin reference", p)
				}
			}
		}
	}
}

// TestWithShardsBandExplain pins the Explain surface of a band plan: it
// must name the range partitioning, the replication band and the
// suppression — not the hash scheme the plan does not use.
func TestWithShardsBandExplain(t *testing.T) {
	p, err := stateslice.Build(bandWorkloadAPI(2), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithKeyRange(0, 99))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	for _, wantSub := range []string{"range(Key in [0,99])", "4 owner ranges", "band 2", "owner-suppressed"} {
		if !strings.Contains(s, wantSub) {
			t.Errorf("Explain missing %q:\n%s", wantSub, s)
		}
	}
	if strings.Contains(s, "splitmix64") {
		t.Errorf("band plan Explain claims hash partitioning:\n%s", s)
	}
}

// TestWithShardsSinks asserts WithSink callbacks observe every result of
// their query in delivery order under sharded execution.
func TestWithShardsSinks(t *testing.T) {
	w := equijoinWorkload()
	input := keyedInput(t)
	var mu sync.Mutex
	var got []*stateslice.Tuple
	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithCollect(),
		stateslice.WithShards(3),
		stateslice.WithSink(1, stateslice.SinkFunc(func(t *stateslice.Tuple) {
			mu.Lock()
			got = append(got, t)
			mu.Unlock()
		})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(len(got)) != res.SinkCounts[1] {
		t.Fatalf("sink observed %d results, query delivered %d", len(got), res.SinkCounts[1])
	}
	for i, tp := range res.Results[1] {
		if got[i] != tp {
			t.Fatalf("sink delivery order diverges from collected results at %d", i)
		}
	}
}

// TestWithShardsExplain sanity-checks the plan surface of a sharded build.
func TestWithShardsExplain(t *testing.T) {
	p, err := stateslice.Build(equijoinWorkload(), stateslice.MemOpt, stateslice.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 2 {
		t.Errorf("sharded Mem-Opt chain reports %d slices, want 2", got)
	}
	// The executor line must name the real partitioning function — the
	// partitioner mixes through splitmix64 before the modulo, so a plain
	// "hash(Key) mod p" would misdescribe how clustered keys spread.
	for _, wantSub := range []string{"shards=4", "splitmix64(Key) mod 4", "mergers", "auto workers"} {
		if s := p.Explain(); !strings.Contains(s, wantSub) {
			t.Errorf("Explain missing %q:\n%s", wantSub, s)
		}
	}
	if s := p.Explain(); strings.Contains(s, "hash(Key)") {
		t.Errorf("Explain still claims a plain key hash:\n%s", s)
	}
	wp, err := stateslice.Build(equijoinWorkload(), stateslice.MemOpt,
		stateslice.WithShards(4), stateslice.WithAssemblyWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if s := wp.Explain(); !strings.Contains(s, "on 2 workers") {
		t.Errorf("Explain missing the explicit worker count:\n%s", s)
	}
	if _, err := p.EstimatedCost(); err != nil {
		t.Errorf("EstimatedCost: %v", err)
	}
}

// TestWithShardsRunConfigRejections pins the RunConfig knobs sharded plans
// cannot honor.
func TestWithShardsRunConfigRejections(t *testing.T) {
	p, err := stateslice.Build(equijoinWorkload(), stateslice.MemOpt, stateslice.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(stateslice.SliceSource(keyedInput(t)), stateslice.RunConfig{Series: true}); err == nil {
		t.Error("RunConfig.Series must be rejected under sharding")
	}
	if _, err := p.NewSession(stateslice.RunConfig{WarmupFraction: 0.5}); err == nil {
		t.Error("RunConfig.WarmupFraction must be rejected under sharding")
	}
}
