package stateslice_test

// The benchmarks regenerate every table and figure of the paper's evaluation
// in testing.B form, one benchmark (family) per exhibit, reporting the
// paper's metrics through b.ReportMetric:
//
//   - tuples-in-state  : Figure 17's memory metric (avg join-state size)
//   - tuples/Mcmp      : the comparison-count service-rate proxy (Fig. 18/19)
//   - tuples/s         : wall-clock service rate on this host
//
// Workloads are scaled to ~20 virtual seconds per iteration so `go test
// -bench=.` finishes quickly; cmd/slicebench runs the full 90-second sweeps.
// Ablation benchmarks cover DESIGN.md's "Design choices the ablations pin
// down": hash vs nested-loop probing, lineage marks vs predicate
// re-evaluation, and the slice-count trade-off behind the CPU-Opt chain.

import (
	"fmt"
	"testing"

	"stateslice"
	"stateslice/internal/bench"
	"stateslice/internal/workload"
)

const (
	benchDuration = 20.0
	benchSeed     = 2006
	benchRate     = 60.0
)

// reportStrategy publishes one strategy's measurements.
func reportStrategy(b *testing.B, m bench.Measurement, prefix string) {
	b.Helper()
	b.ReportMetric(m.AvgStateTuples, prefix+"tuples-in-state")
	b.ReportMetric(m.CompRate, prefix+"tuples/Mcmp")
}

// BenchmarkTable2Trace replays the paper's Table 2 execution trace.
func BenchmarkTable2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2Trace(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Savings evaluates the Eq. (4) savings surfaces of Figure 11.
func BenchmarkFig11Savings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := bench.Fig11Series(9)
		if len(series) != 8 {
			b.Fatalf("unexpected series count %d", len(series))
		}
	}
}

// benchPanel runs one Figure 17/18 panel at the benchmark rate for each of
// the three strategies and reports the paper's metrics.
func benchPanel(b *testing.B, p bench.Fig17Panel, s bench.Strategy) {
	b.Helper()
	w, err := workload.ThreeQueries(p.Dist, p.SSigma, p.S1)
	if err != nil {
		b.Fatal(err)
	}
	rc := bench.RunConfig{Rate: benchRate, DurationSec: benchDuration, Seed: benchSeed}
	var last bench.Measurement
	for i := 0; i < b.N; i++ {
		m, err := bench.RunStrategies(w, []bench.Strategy{s}, rc, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = m[s]
	}
	reportStrategy(b, last, "")
	b.ReportMetric(last.ServiceRate, "tuples/s")
}

// BenchmarkFig17Memory regenerates the six memory panels of Figure 17.
func BenchmarkFig17Memory(b *testing.B) {
	for _, p := range bench.Fig17Panels() {
		for _, s := range bench.Strategies3() {
			b.Run(fmt.Sprintf("%s/%s", p.Label, s), func(b *testing.B) {
				benchPanel(b, p, s)
			})
		}
	}
}

// BenchmarkFig18ServiceRate regenerates the six service-rate panels of
// Figure 18.
func BenchmarkFig18ServiceRate(b *testing.B) {
	for _, p := range bench.Fig18Panels() {
		for _, s := range bench.Strategies3() {
			b.Run(fmt.Sprintf("%s/%s", p.Label, s), func(b *testing.B) {
				benchPanel(b, p, s)
			})
		}
	}
}

// BenchmarkFig19MemVsCPUOpt regenerates the five Mem-Opt vs CPU-Opt panels
// of Figure 19.
func BenchmarkFig19MemVsCPUOpt(b *testing.B) {
	for _, p := range bench.Fig19Panels() {
		b.Run(p.Label, func(b *testing.B) {
			w, err := workload.NQueries(p.Dist, p.Queries, 0.025)
			if err != nil {
				b.Fatal(err)
			}
			rc := bench.RunConfig{
				Rate: 40, DurationSec: benchDuration, Seed: benchSeed,
				MetricCsys: bench.DefaultCsys,
			}
			var meas map[bench.ChainVariant]bench.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				meas, _, err = bench.RunChainVariants(w, rc, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(meas[bench.MemOpt].CompRate, "memopt-tuples/Mcmp")
			b.ReportMetric(meas[bench.CPUOpt].CompRate, "cpuopt-tuples/Mcmp")
			b.ReportMetric(meas[bench.MemOpt].ServiceRate, "memopt-tuples/s")
			b.ReportMetric(meas[bench.CPUOpt].ServiceRate, "cpuopt-tuples/s")
		})
	}
}

// benchWorkload is the shared two-query workload of the ablations.
func benchWorkload(filter stateslice.Predicate) stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 3 * stateslice.Second},
			{Window: 12 * stateslice.Second, Filter: filter},
		},
		Join: stateslice.Equijoin{},
	}
}

func benchInput(b *testing.B, domain int64) []*stateslice.Tuple {
	b.Helper()
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: benchRate, RateB: benchRate,
		Duration:  stateslice.Seconds(benchDuration),
		KeyDomain: domain,
		Seed:      benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return input
}

// BenchmarkAblationLineageVsReeval compares the Section 6.1 lineage marks
// against re-evaluating pushed-down predicates at every slice gate.
func BenchmarkAblationLineageVsReeval(b *testing.B) {
	w := benchWorkload(stateslice.Threshold{S: 0.3})
	input := benchInput(b, 20)
	for name, disable := range map[string]bool{"lineage": false, "reeval": true} {
		b.Run(name, func(b *testing.B) {
			var filterCmp float64
			for i := 0; i < b.N; i++ {
				opts := []stateslice.Option{}
				if disable {
					opts = append(opts, stateslice.WithoutLineage())
				}
				p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{SampleEvery: 16})
				if err != nil {
					b.Fatal(err)
				}
				filterCmp = float64(res.Meter.Filter)
			}
			b.ReportMetric(filterCmp, "filter-comparisons")
		})
	}
}

// BenchmarkAblationChainLength sweeps the number of slices for a fixed
// workload, exposing the purge-and-overhead vs routing trade-off that the
// CPU-Opt optimizer navigates (Section 5.2).
func BenchmarkAblationChainLength(b *testing.B) {
	maxW := 12.0
	w := stateslice.Workload{
		Queries: []stateslice.Query{{Window: stateslice.Seconds(maxW)}},
		Join:    stateslice.FractionMatch{S: 0.1},
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: benchRate, RateB: benchRate,
		Duration: stateslice.Seconds(benchDuration),
		Seed:     benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, slices := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("slices=%d", slices), func(b *testing.B) {
			var ends []stateslice.Time
			for i := 1; i <= slices; i++ {
				ends = append(ends, stateslice.Seconds(maxW*float64(i)/float64(slices)))
			}
			var cmp uint64
			for i := 0; i < b.N; i++ {
				p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithEnds(ends...))
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{SampleEvery: 16})
				if err != nil {
					b.Fatal(err)
				}
				cmp = res.Meter.Comparisons()
			}
			b.ReportMetric(float64(cmp), "comparisons")
		})
	}
}

// BenchmarkAblationHashVsNL compares nested-loop probing (the paper's cost
// model) with the hash-index probing variant cited from Kang et al. [14].
func BenchmarkAblationHashVsNL(b *testing.B) {
	input := benchInput(b, 50)
	w := benchWorkload(nil)
	for _, mode := range []string{"nested-loop", "hash"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := []stateslice.Option{}
				if mode == "hash" {
					opts = append(opts, stateslice.WithHashProbing())
				}
				p, err := stateslice.Build(w, stateslice.PullUp, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{SampleEvery: 16}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMigration measures the cost of one merge plus one split on a
// running chain (the Section 5.3 "constant system cost").
func BenchmarkMigration(b *testing.B) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 6 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.1},
	}
	input := benchInput(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithMigratable())
		if err != nil {
			b.Fatal(err)
		}
		s, err := p.NewSession(stateslice.RunConfig{SampleEvery: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Consume(stateslice.SliceSource(input[:len(input)/4])); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := p.Migrate([]stateslice.Time{6 * stateslice.Second}); err != nil {
			b.Fatal(err)
		}
		if err := p.Migrate([]stateslice.Time{2 * stateslice.Second, 6 * stateslice.Second}); err != nil {
			b.Fatal(err)
		}
	}
}
