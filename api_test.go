package stateslice_test

// Tests of the strategy-driven Build API: build determinism and Auto
// resolution, streaming Source/Sink execution, the verbatim CostModel
// semantics, hash-probing eligibility reporting, and first-class chain
// migration.

import (
	"fmt"
	"strings"
	"testing"

	"stateslice"
)

// renderResults flattens per-query result tuples into a comparable string:
// byte-identical runs render identically.
func renderResults(results [][]*stateslice.Tuple) string {
	var b strings.Builder
	for qi, rs := range results {
		fmt.Fprintf(&b, "Q%d:", qi)
		for _, t := range rs {
			fmt.Fprintf(&b, " %s@%s#%d", t, t.Time, t.Seq)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// buildCollected builds the workload under a strategy, runs it, and returns
// its rendered per-query results.
func buildCollected(t *testing.T, w stateslice.Workload, s stateslice.Strategy, input []*stateslice.Tuple, opts ...stateslice.Option) string {
	t.Helper()
	p, err := stateslice.Build(w, s, append([]stateslice.Option{stateslice.WithCollect()}, opts...)...)
	if err != nil {
		t.Fatalf("Build(%s): %v", s, err)
	}
	res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	return renderResults(res.Results)
}

// TestBuildEquivalence asserts that Build is deterministic — two independent
// builds of the same workload render byte-identical per-query results for
// every strategy — and that Auto resolves to one of the chain layouts and
// matches a direct build of the resolved strategy byte-for-byte.
func TestBuildEquivalence(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)
	model := stateslice.CostModel{
		RateA: 25, RateB: 25,
		JoinSelectivity: 0.15,
		Csys:            stateslice.DefaultCsys,
		TupleKB:         stateslice.DefaultTupleKB,
	}

	for _, s := range stateslice.Strategies() {
		var opts []stateslice.Option
		if s == stateslice.CPUOpt {
			opts = append(opts, stateslice.WithCostParams(model))
		}
		p, err := stateslice.Build(w, s, append(opts, stateslice.WithCollect())...)
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		if got := p.Strategy(); got != s {
			t.Errorf("Build(%s).Strategy() = %s", s, got)
		}
		first := buildCollected(t, w, s, input, opts...)
		second := buildCollected(t, w, s, input, opts...)
		if first != second {
			t.Errorf("Build(%s) is not deterministic", s)
		}
	}

	// Auto defers the layout choice to the sharing pass; the built plan
	// reports the resolved strategy and is byte-identical to building it
	// directly.
	auto, err := stateslice.Build(w, stateslice.Auto, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	rs := auto.Strategy()
	if rs != stateslice.MemOpt && rs != stateslice.CPUOpt {
		t.Fatalf("Auto resolved to %s, want mem-opt or cpu-opt", rs)
	}
	autoRes, err := auto.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResults(autoRes.Results), buildCollected(t, w, rs, input); got != want {
		t.Errorf("Auto results differ from a direct %s build", rs)
	}
}

// TestWithBatchSize covers the micro-batch build option: batched runs match
// the per-tuple default byte-for-byte, a RunConfig override wins, and the
// invalid combinations are rejected.
func TestWithBatchSize(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)

	ref, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(refRes.Results)

	for _, k := range []int{7, 64, -1} {
		p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(), stateslice.WithBatchSize(k))
		if err != nil {
			t.Fatalf("WithBatchSize(%d): %v", k, err)
		}
		res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.OrderViolations != 0 {
			t.Errorf("k=%d: %d order violations", k, res.OrderViolations)
		}
		if got := renderResults(res.Results); got != want {
			t.Errorf("k=%d results differ from the per-tuple schedule", k)
		}
	}

	// A RunConfig with its own batch size overrides the option.
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(), stateslice.WithBatchSize(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderResults(res.Results); got != want {
		t.Error("RunConfig.BatchSize override results differ")
	}

	if _, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithBatchSize(0)); err == nil {
		t.Error("WithBatchSize(0) must be rejected")
	}
	unfiltered := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.15},
	}
	if _, err := stateslice.Build(unfiltered, stateslice.MemOpt, stateslice.WithConcurrency(), stateslice.WithBatchSize(8)); err == nil {
		t.Error("WithBatchSize with WithConcurrency must be rejected")
	}
	// The RunConfig route must be rejected just as loudly.
	cp, err := stateslice.Build(unfiltered, stateslice.MemOpt, stateslice.WithConcurrency())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Run(stateslice.SliceSource(input), stateslice.RunConfig{BatchSize: 8}); err == nil {
		t.Error("RunConfig.BatchSize on a concurrent plan must be rejected, not silently ignored")
	}
}

// TestChannelSourceMatchesBatch proves a channel-backed streaming run
// yields byte-identical per-query results to the batch run of the same
// workload.
func TestChannelSourceMatchesBatch(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)

	batch, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batch.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	streamed, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan *stateslice.Tuple, 8)
	go func() {
		defer close(ch)
		for _, tp := range input {
			ch <- tp
		}
	}()
	chanRes, err := streamed.Run(stateslice.ChannelSource(ch), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	if chanRes.Inputs != batchRes.Inputs {
		t.Errorf("channel run fed %d tuples, batch %d", chanRes.Inputs, batchRes.Inputs)
	}
	if got, want := renderResults(chanRes.Results), renderResults(batchRes.Results); got != want {
		t.Error("channel-backed source results differ from batch run")
	}

	// WarmupFraction needs a total input size: unsized sources must be
	// rejected loudly, not silently sampled without a warm-up.
	unsized, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	empty := make(chan *stateslice.Tuple)
	close(empty)
	if _, err := unsized.Run(stateslice.ChannelSource(empty), stateslice.RunConfig{WarmupFraction: 0.2}); err == nil {
		t.Error("WarmupFraction with an unsized source must fail")
	}
	if _, err := unsized.Run(stateslice.ChannelSource(empty), stateslice.RunConfig{WarmupFraction: 0.2, ExpectedInputs: 100}); err != nil {
		t.Errorf("WarmupFraction with explicit ExpectedInputs: %v", err)
	}
}

// TestGeneratorSourceMatchesGenerate asserts the streaming generator yields
// exactly the batch generator's tuple sequence.
func TestGeneratorSourceMatchesGenerate(t *testing.T) {
	cfg := stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 10 * stateslice.Second, KeyDomain: 16, Seed: 11,
	}
	batch, err := stateslice.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stateslice.GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := stateslice.CollectSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d tuples, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if *streamed[i] != *batch[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, streamed[i], batch[i])
		}
	}
}

// TestConcurrentBuild reaches the pipeline executor through Build and
// checks its results against the sequential engine.
func TestConcurrentBuild(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.15},
	}
	input := exampleInput(t)

	seq, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := seq.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	conc, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithCollect(), stateslice.WithConcurrency())
	if err != nil {
		t.Fatal(err)
	}
	concRes, err := conc.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if concRes.OrderViolations != 0 {
		t.Error("concurrent execution broke ordering")
	}
	if concRes.Inputs != seqRes.Inputs {
		t.Errorf("concurrent fed %d, sequential %d", concRes.Inputs, seqRes.Inputs)
	}
	if got, want := renderResults(concRes.Results), renderResults(seqRes.Results); got != want {
		t.Error("concurrent results differ from sequential engine")
	}

	// Filtered workloads cannot run concurrently.
	if _, err := stateslice.Build(exampleWorkload(), stateslice.MemOpt, stateslice.WithConcurrency()); err == nil {
		t.Error("WithConcurrency must reject filtered workloads")
	}
	// Sessions are a sequential-engine feature.
	if _, err := conc.NewSession(stateslice.RunConfig{}); err == nil {
		t.Error("concurrent plans must reject sessions")
	}
}

// TestCostModelSemantics pins the WithCostParams contract: values are taken
// verbatim (an explicit Csys of 0 is honored, turning CPU-Opt into the
// unmerged Mem-Opt layout on this workload) and impossible zeros are
// rejected instead of silently defaulted.
func TestCostModelSemantics(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: stateslice.Seconds(1)},
			{Window: stateslice.Seconds(1.5)},
			{Window: stateslice.Seconds(30)},
		},
		Join: stateslice.FractionMatch{S: 0.15},
	}
	model := stateslice.CostModel{
		RateA: 50, RateB: 50,
		JoinSelectivity: 0.15,
		Csys:            0, // explicit zero: no scheduling overhead
		TupleKB:         1,
	}
	p0, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCostParams(model))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p0.Ends()); got != 3 {
		t.Errorf("Csys=0 chain has %d slices, want 3 (no overhead means nothing to merge here)", got)
	}
	model.Csys = 15
	p15, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCostParams(model))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p15.Ends()); got >= 3 {
		t.Errorf("Csys=15 chain has %d slices, want the clustered windows merged", got)
	}

	// Impossible zeros are errors, not defaults.
	bad := model
	bad.JoinSelectivity = 0
	if _, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCostParams(bad)); err == nil {
		t.Error("JoinSelectivity=0 must be rejected")
	}
	bad = model
	bad.RateA = 0
	if _, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCostParams(bad)); err == nil {
		t.Error("RateA=0 must be rejected")
	}
	bad = model
	bad.TupleKB = 0
	if _, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithCostParams(bad)); err == nil {
		t.Error("TupleKB=0 must be rejected")
	}
	if err := stateslice.DefaultCostModel().Validate(); err != nil {
		t.Errorf("DefaultCostModel must validate: %v", err)
	}
}

// TestHashProbingEligibility pins the fixed reporting: plans without any
// regular window join refuse hash probing instead of silently succeeding.
func TestHashProbingEligibility(t *testing.T) {
	eq := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 2 * stateslice.Second},
			{Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	// State-slice chains contain only sliced joins: not eligible.
	if _, err := stateslice.Build(eq, stateslice.MemOpt, stateslice.WithHashProbing()); err == nil {
		t.Error("WithHashProbing on a sliced chain must be reported")
	}
	// Pull-up over an equijoin is eligible.
	if _, err := stateslice.Build(eq, stateslice.PullUp, stateslice.WithHashProbing()); err != nil {
		t.Errorf("WithHashProbing on pull-up: %v", err)
	}
	// Eligible join shape but a non-equijoin predicate still fails.
	if _, err := stateslice.Build(exampleWorkload(), stateslice.PullUp, stateslice.WithHashProbing()); err == nil {
		t.Error("hash probing without an equijoin must fail")
	}
}

// TestMigrateMethod drives online re-slicing through the Plan interface and
// verifies no result is lost or duplicated.
func TestMigrateMethod(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)

	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithMigratable())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err == nil {
		t.Error("Migrate without a session must fail")
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	half := len(input) / 2
	if err := sess.Consume(stateslice.SliceSource(input[:half])); err != nil {
		t.Fatal(err)
	}
	// Merge to one slice, then split at a boundary the chain never had.
	if err := p.Migrate([]stateslice.Time{8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 1 {
		t.Fatalf("after merge migration: %d slices", got)
	}
	if err := p.Migrate([]stateslice.Time{3 * stateslice.Second, 8 * stateslice.Second}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 2 {
		t.Fatalf("after split migration: %d slices", got)
	}
	if err := sess.Consume(stateslice.SliceSource(input[half:])); err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.OrderViolations != 0 {
		t.Error("migration broke ordering")
	}

	ref, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range res.SinkCounts {
		if res.SinkCounts[qi] != refRes.SinkCounts[qi] {
			t.Errorf("query %d: migrated %d results, static %d", qi, res.SinkCounts[qi], refRes.SinkCounts[qi])
		}
	}

	// Invalid targets and ineligible plans.
	if err := p.Migrate([]stateslice.Time{3 * stateslice.Second}); err == nil {
		t.Error("target missing the largest boundary must fail")
	}
	static, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := static.Migrate([]stateslice.Time{8 * stateslice.Second}); err == nil {
		t.Error("Migrate without WithMigratable must fail")
	}
	pu, err := stateslice.Build(w, stateslice.PullUp)
	if err != nil {
		t.Fatal(err)
	}
	if err := pu.Migrate([]stateslice.Time{8 * stateslice.Second}); err == nil {
		t.Error("Migrate on a non-chain strategy must fail")
	}
}

// TestSinkStreams asserts WithSink callbacks observe every result of their
// query, in delivery order, while the run is still in flight.
func TestSinkStreams(t *testing.T) {
	w := exampleWorkload()
	input := exampleInput(t)
	var got []*stateslice.Tuple
	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithCollect(),
		stateslice.WithSink(1, stateslice.SinkFunc(func(t *stateslice.Tuple) { got = append(got, t) })))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != res.SinkCounts[1] {
		t.Fatalf("sink saw %d results, query delivered %d", len(got), res.SinkCounts[1])
	}
	for i, tp := range res.Results[1] {
		if got[i] != tp {
			t.Fatalf("sink result %d out of order", i)
		}
	}
	// Out-of-range sink indexes are rejected.
	if _, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithSink(5, stateslice.SinkFunc(func(*stateslice.Tuple) {}))); err == nil {
		t.Error("WithSink out-of-range query index must fail")
	}
}

// TestExplainAndEstimatedCost smoke-tests the introspection surface.
func TestExplainAndEstimatedCost(t *testing.T) {
	w := exampleWorkload()
	for _, s := range stateslice.Strategies() {
		p, err := stateslice.Build(w, s)
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		if e := p.Explain(); !strings.Contains(e, s.String()) {
			t.Errorf("Explain(%s) does not mention the strategy:\n%s", s, e)
		}
		c, err := p.EstimatedCost()
		if err != nil {
			t.Errorf("EstimatedCost(%s): %v", s, err)
		} else if c.MemoryKB <= 0 || c.CPU <= 0 {
			t.Errorf("EstimatedCost(%s) = %+v, want positive costs", s, c)
		}
	}
	// The chain model prefers state-slice over pull-up on the motivating
	// two-query shape, mirroring Eq. (1) vs Eq. (3).
	sl, err := stateslice.Build(w, stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := stateslice.Build(w, stateslice.PullUp)
	if err != nil {
		t.Fatal(err)
	}
	slc, err := sl.EstimatedCost()
	if err != nil {
		t.Fatal(err)
	}
	puc, err := pu.EstimatedCost()
	if err != nil {
		t.Fatal(err)
	}
	if slc.MemoryKB >= puc.MemoryKB {
		t.Errorf("chain modelled memory %.1f KB, pull-up %.1f KB; chain must win", slc.MemoryKB, puc.MemoryKB)
	}
	// Eq. (1)/(2) are two-query formulas.
	three := stateslice.Workload{
		Queries: []stateslice.Query{
			{Window: 1 * stateslice.Second},
			{Window: 2 * stateslice.Second},
			{Window: 3 * stateslice.Second},
		},
		Join: stateslice.FractionMatch{S: 0.1},
	}
	p3, err := stateslice.Build(three, stateslice.PullUp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.EstimatedCost(); err == nil {
		t.Error("pull-up EstimatedCost must reject non-two-query workloads")
	}
}

// TestBuildOptionValidation pins the option/strategy compatibility matrix
// and the strategy name round-trip.
func TestBuildOptionValidation(t *testing.T) {
	w := exampleWorkload()
	if _, err := stateslice.Build(w, stateslice.PullUp, stateslice.WithEnds(8*stateslice.Second)); err == nil {
		t.Error("WithEnds on pull-up must fail")
	}
	if _, err := stateslice.Build(w, stateslice.CPUOpt, stateslice.WithEnds(8*stateslice.Second)); err == nil {
		t.Error("WithEnds on cpu-opt must fail")
	}
	if _, err := stateslice.Build(w, stateslice.Unshared, stateslice.WithMigratable()); err == nil {
		t.Error("WithMigratable on unshared must fail")
	}
	if _, err := stateslice.Build(w, stateslice.PushDown, stateslice.WithConcurrency()); err == nil {
		t.Error("WithConcurrency on push-down must fail")
	}
	unfiltered := stateslice.Workload{
		Queries: []stateslice.Query{{Window: 2 * stateslice.Second}, {Window: 8 * stateslice.Second}},
		Join:    stateslice.FractionMatch{S: 0.1},
	}
	if _, err := stateslice.Build(unfiltered, stateslice.MemOpt,
		stateslice.WithConcurrency(), stateslice.WithEnds(8*stateslice.Second)); err == nil {
		t.Error("WithConcurrency + WithEnds must fail rather than ignore the pinned layout")
	}
	if _, err := stateslice.Build(unfiltered, stateslice.MemOpt,
		stateslice.WithConcurrency(), stateslice.WithoutLineage()); err == nil {
		t.Error("WithConcurrency + WithoutLineage must fail")
	}
	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithEnds(8*stateslice.Second), stateslice.WithName("custom-chain"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Ends()); got != 1 {
		t.Errorf("explicit single boundary built %d slices", got)
	}
	if p.Name() != "custom-chain" {
		t.Errorf("WithName ignored: %q", p.Name())
	}
	for _, s := range stateslice.Strategies() {
		back, err := stateslice.ParseStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), back, err)
		}
	}
	if _, err := stateslice.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy must reject unknown names")
	}
}
