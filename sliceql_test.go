package stateslice_test

// Tests of the SliceQL front-end at the public API: the equivalence matrix
// pinning that query text compiles to byte-identical plans and results as
// hand-built workloads (the front-end's core contract), strategy-name
// round-trips, query admission from text, and golden-file Explain output
// covering the optimizer pass trace. Refresh goldens with
//
//	go test -run TestExplainGolden -update .

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stateslice"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

const equiSrc = `
	q1: SELECT * FROM a JOIN b ON a.k = b.k WINDOW 2 s;
	q2: SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value >= 0.6 WINDOW 8 s;
`

const bandSrc = `
	q1: SELECT * FROM a JOIN b ON BAND(a.k, b.k, 2) WINDOW 2 s KEYS 0..63;
	q2: SELECT * FROM a JOIN b ON BAND(a.k, b.k, 2) WHERE a.value >= 0.6 WINDOW 8 s;
`

// equiWorkload is the hand-built twin of equiSrc. The filter selectivity is
// written 1-0.6 so it goes through the same arithmetic as the front-end's
// binding of "value >= 0.6".
func equiWorkload() stateslice.Workload {
	return stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "q1", Window: 2 * stateslice.Second},
			{Name: "q2", Window: 8 * stateslice.Second, Filter: stateslice.Threshold{S: 1 - 0.6}},
		},
		Join: stateslice.Equijoin{},
	}
}

func bandWorkload() stateslice.Workload {
	w := equiWorkload()
	w.Join = stateslice.BandJoin{B: 2}
	return w
}

// TestSliceQLEquivalenceMatrix pins the front-end's core contract: a SliceQL
// query set compiles — through the same optimizer pass pipeline — to the
// same plan as the hand-built workload, with an identical Explain (including
// the pass trace) and byte-identical per-query results, across sequential
// and sharded builds of both shardable join shapes.
func TestSliceQLEquivalenceMatrix(t *testing.T) {
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 20 * stateslice.Second, KeyDomain: 64, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	joins := []struct {
		name string
		src  string
		w    stateslice.Workload
		band bool
	}{
		{"equijoin", equiSrc, equiWorkload(), false},
		{"band", bandSrc, bandWorkload(), true},
	}
	for _, j := range joins {
		for _, shards := range []int{0, 1, 4} {
			name := j.name + "/sequential"
			handOpts := []stateslice.Option{stateslice.WithCollect()}
			qlOpts := []stateslice.Option{stateslice.WithCollect()}
			if shards > 0 {
				name = j.name + "/p" + string(rune('0'+shards))
				handOpts = append(handOpts, stateslice.WithShards(shards))
				qlOpts = append(qlOpts, stateslice.WithShards(shards))
				if j.band {
					// The hand-built path declares the key domain
					// explicitly; the SliceQL path gets it from the
					// KEYS clause.
					handOpts = append(handOpts, stateslice.WithKeyRange(0, 63))
				}
			}
			t.Run(name, func(t *testing.T) {
				hand, err := stateslice.Build(j.w, stateslice.MemOpt, handOpts...)
				if err != nil {
					t.Fatal(err)
				}
				ql, err := stateslice.CompileQuery(j.src, stateslice.MemOpt, qlOpts...)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := ql.Explain(), hand.Explain(); got != want {
					t.Errorf("Explain diverges (pass traces must match):\n--- sliceql ---\n%s--- hand ---\n%s", got, want)
				}
				handRes, err := hand.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				qlRes, err := ql.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := renderResults(qlRes.Results), renderResults(handRes.Results); got != want {
					t.Error("SliceQL results differ from the hand-built workload's")
				}
			})
		}
	}

	// The same holds through the cost-based passes: CPU-Opt with an
	// explicit model, from text and by hand.
	t.Run("equijoin/cpu-opt", func(t *testing.T) {
		model := stateslice.CostModel{
			RateA: 25, RateB: 25,
			JoinSelectivity: 0.1,
			Csys:            stateslice.DefaultCsys,
			TupleKB:         stateslice.DefaultTupleKB,
		}
		hand, err := stateslice.Build(equiWorkload(), stateslice.CPUOpt,
			stateslice.WithCostParams(model), stateslice.WithCollect())
		if err != nil {
			t.Fatal(err)
		}
		ql, err := stateslice.CompileQuery(equiSrc, stateslice.CPUOpt,
			stateslice.WithCostParams(model), stateslice.WithCollect())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ql.Explain(), hand.Explain(); got != want {
			t.Errorf("Explain diverges:\n--- sliceql ---\n%s--- hand ---\n%s", got, want)
		}
		handRes, err := hand.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		qlRes, err := ql.Run(stateslice.SliceSource(input), stateslice.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderResults(qlRes.Results), renderResults(handRes.Results); got != want {
			t.Error("SliceQL CPU-Opt results differ from the hand-built workload's")
		}
	})
}

// TestParseStrategyRoundTrip covers every strategy name, including Auto,
// which Strategies() deliberately omits (it is a resolution directive, not a
// layout of its own).
func TestParseStrategyRoundTrip(t *testing.T) {
	all := append(stateslice.Strategies(), stateslice.Auto)
	if len(all) != 6 {
		t.Fatalf("%d strategies, want 6", len(all))
	}
	for _, s := range all {
		back, err := stateslice.ParseStrategy(s.String())
		if err != nil || back != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), back, err)
		}
	}
	if _, err := stateslice.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy must reject unknown names")
	}
}

// TestParseWorkloadErrors asserts front-end errors carry the line:column of
// the offending clause through the public API.
func TestParseWorkloadErrors(t *testing.T) {
	for _, tc := range []struct{ src, pos, want string }{
		{"SELECT * FROM a JOIN b ON a.k = b.k", "1:36", "WINDOW"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WINDOW 1s;\nSELECT * FROM a JOIN c ON a.k = c.k WINDOW 2s", "2:1", "same stream pair"},
		{"SELECT * FROM a JOIN b ON a.k = b.k WHERE a.value >= 1.5 WINDOW 1s", "1:43", "selectivity"},
	} {
		_, err := stateslice.ParseWorkload(tc.src)
		if err == nil {
			t.Errorf("ParseWorkload(%q) succeeded", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.pos) || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseWorkload(%q) error %q, want position %s mentioning %q", tc.src, err, tc.pos, tc.want)
		}
	}
	if _, err := stateslice.CompileQuery("not sliceql", stateslice.MemOpt); err == nil {
		t.Error("CompileQuery must propagate parse errors")
	}
}

// TestAttachQueryFromText admits a SliceQL statement into a running session
// and checks the single-statement contract of ParseQuery.
func TestAttachQueryFromText(t *testing.T) {
	w := stateslice.Workload{
		Queries: []stateslice.Query{
			{Name: "q1", Window: 2 * stateslice.Second},
			{Name: "q2", Window: 8 * stateslice.Second},
		},
		Join: stateslice.Equijoin{},
	}
	p, err := stateslice.Build(w, stateslice.MemOpt, stateslice.WithMigratable(), stateslice.WithCollect())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 25, RateB: 25, Duration: 10 * stateslice.Second, KeyDomain: 16, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[:len(input)/2])); err != nil {
		t.Fatal(err)
	}
	id, err := stateslice.AttachQuery(sess, `q3: SELECT * FROM a JOIN b ON a.k = b.k WINDOW 4 s;`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Consume(stateslice.SliceSource(input[len(input)/2:])); err != nil {
		t.Fatal(err)
	}
	res := sess.Finish()
	if res.OrderViolations != 0 {
		t.Error("admission broke ordering")
	}
	if res.SinkCounts[id] == 0 {
		t.Error("admitted query delivered no results")
	}

	// ParseQuery is strictly single-statement; parse errors propagate.
	if _, err := stateslice.ParseQuery(equiSrc); err == nil || !strings.Contains(err.Error(), "exactly one statement") {
		t.Errorf("ParseQuery on a query set: %v", err)
	}
	if _, err := stateslice.AttachQuery(sess, "nope"); err == nil {
		t.Error("AttachQuery must propagate parse errors")
	}
}

// TestExplainGolden pins the full Explain output — plan shape, operators,
// and the optimizer pass trace — against golden files. The cases use
// explicit shard counts (never WithAutoShards) so the output does not depend
// on GOMAXPROCS.
func TestExplainGolden(t *testing.T) {
	model := stateslice.CostModel{
		RateA: 40, RateB: 40,
		JoinSelectivity: 0.025,
		Csys:            3,
		TupleKB:         0.1,
	}
	cases := []struct {
		name string
		src  string
		s    stateslice.Strategy
		opts []stateslice.Option
	}{
		{"memopt-chain", equiSrc, stateslice.MemOpt, nil},
		{"cpuopt-chain", equiSrc, stateslice.CPUOpt, []stateslice.Option{stateslice.WithCostParams(model)}},
		{"auto-chain", equiSrc, stateslice.Auto, []stateslice.Option{stateslice.WithCostParams(model)}},
		{"sharded-equijoin", equiSrc, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2)}},
		{"sharded-band", bandSrc, stateslice.MemOpt, []stateslice.Option{stateslice.WithShards(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := stateslice.CompileQuery(tc.src, tc.s, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Explain()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run: go test -run TestExplainGolden -update .)", err)
			}
			if got != string(want) {
				t.Errorf("Explain drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
