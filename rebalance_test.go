package stateslice_test

// Rebalancing through the public API: the acceptance skew-sweep (learned
// equi-depth ranges must beat the fixed Build-time split by >= 2x on the
// per-replica probe-comparison imbalance of a quadratic-skew band feed at
// p=8, byte-identically), the WithRebalance auto-trigger, the live ownership
// table in Explain, and the option's validation surface.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"stateslice"
)

// skewedBandInput generates a band-join feed whose keys follow a quadratic
// skew: k -> floor(k^2/dom) is concave, so the low keys soak up most of the
// mass while a fixed equi-width range split leaves the high shards idle.
func skewedBandInput(t testing.TB, seed int64, dom int64) []*stateslice.Tuple {
	t.Helper()
	input, err := stateslice.Generate(stateslice.GeneratorConfig{
		RateA: 40, RateB: 40, Duration: 20 * stateslice.Second, KeyDomain: dom, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range input {
		tp.Key = (tp.Key * tp.Key) / dom
	}
	return input
}

// probeImbalance returns the max/mean ratio of the per-replica probe
// comparison counts.
func probeImbalance(t *testing.T, res *stateslice.Result) float64 {
	t.Helper()
	if len(res.ReplicaComparisons) == 0 {
		t.Fatal("result carries no per-replica comparison counts")
	}
	var max, sum uint64
	for _, c := range res.ReplicaComparisons {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		t.Fatal("no probe comparisons recorded; the skew measurement is vacuous")
	}
	return float64(max) * float64(len(res.ReplicaComparisons)) / float64(sum)
}

// runShardedBand drives the skewed input through a sharded band session,
// rebalancing at each position in `at`, and returns the result.
func runShardedBand(t *testing.T, w stateslice.Workload, input []*stateslice.Tuple, dom int64, shards int, at []int, extra ...stateslice.Option) *stateslice.Result {
	t.Helper()
	opts := append([]stateslice.Option{
		stateslice.WithShards(shards), stateslice.WithKeyRange(0, dom-1), stateslice.WithCollect(),
	}, extra...)
	p, err := stateslice.Build(w, stateslice.MemOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	prev := 0
	for _, pos := range append(append([]int(nil), at...), len(input)) {
		if err := sess.Consume(stateslice.SliceSource(input[prev:pos])); err != nil {
			t.Fatal(err)
		}
		if pos == len(input) {
			break
		}
		moved, err := sess.Rebalance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !moved {
			t.Fatal("Rebalance refused to move state on a quadratic-skew band feed")
		}
		prev = pos
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestRebalanceSkewImprovement is the acceptance criterion: on a
// quadratic-skew band feed at p=8, a mid-stream rebalance must improve the
// max/mean per-replica probe-comparison ratio by at least 2x over the fixed
// partitioner, with byte-identical merged output.
func TestRebalanceSkewImprovement(t *testing.T) {
	const dom = 64
	w := bandWorkloadAPI(1)
	input := skewedBandInput(t, 9, dom)
	ref := sequentialReference(t, w, input)

	fixed := runShardedBand(t, w, input, dom, 8, nil)
	if got := renderResults(fixed.Results); got != ref {
		t.Fatal("fixed-partitioner sharded output differs from the sequential engine")
	}
	rebalanced := runShardedBand(t, w, input, dom, 8, []int{len(input) / 8})
	if got := renderResults(rebalanced.Results); got != ref {
		t.Fatal("rebalanced sharded output differs from the sequential engine")
	}

	fixedImb := probeImbalance(t, fixed)
	rebImb := probeImbalance(t, rebalanced)
	t.Logf("probe-comparison max/mean: fixed %.2f, rebalanced %.2f (%.2fx)", fixedImb, rebImb, fixedImb/rebImb)
	if fixedImb < 2 {
		t.Fatalf("fixed split imbalance %.2f; the skew scenario is too tame to accept against", fixedImb)
	}
	if fixedImb/rebImb < 2 {
		t.Errorf("rebalance improved the probe imbalance only %.2fx (fixed %.2f -> %.2f), want >= 2x",
			fixedImb/rebImb, fixedImb, rebImb)
	}
}

// TestRebalanceAutoTrigger pins WithRebalance: a sustained skew must trigger
// the move from the feed path with no Rebalance call, keep the output
// byte-identical, and land a near-balanced delivery share visible in the
// Explain ownership table.
func TestRebalanceAutoTrigger(t *testing.T) {
	const dom = 64
	w := bandWorkloadAPI(1)
	input := skewedBandInput(t, 11, dom)
	ref := sequentialReference(t, w, input)

	p, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithShards(8), stateslice.WithKeyRange(0, dom-1), stateslice.WithCollect(),
		stateslice.WithRebalance(stateslice.Rebalance{Threshold: 1.3, CheckEvery: 256, Sustained: 2}))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	if err := sess.Consume(stateslice.SliceSource(input)); err != nil {
		t.Fatal(err)
	}
	explain := p.Explain()
	if !strings.Contains(explain, "ownership (live)") || !strings.Contains(explain, "shard 7") {
		t.Errorf("Explain on a live sharded session lacks the ownership table:\n%s", explain)
	}
	res := sess.Finish()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := renderResults(res.Results); got != ref {
		t.Fatal("auto-rebalanced output differs from the sequential engine")
	}
	// The trigger must actually have fired: with learned cuts installed the
	// probe imbalance lands well under the fixed split's.
	fixed := runShardedBand(t, w, input, dom, 8, nil)
	fixedImb, autoImb := probeImbalance(t, fixed), probeImbalance(t, res)
	t.Logf("probe-comparison max/mean: fixed %.2f, auto-rebalanced %.2f", fixedImb, autoImb)
	if autoImb >= fixedImb {
		t.Errorf("auto trigger never improved the probe imbalance (fixed %.2f, auto %.2f)", fixedImb, autoImb)
	}
}

// TestRebalanceValidation pins the option's misuse surface.
func TestRebalanceValidation(t *testing.T) {
	w := bandWorkloadAPI(1)
	if _, err := stateslice.Build(w, stateslice.MemOpt,
		stateslice.WithRebalance(stateslice.Rebalance{})); err == nil {
		t.Error("WithRebalance without WithShards must fail at Build")
	}
	if _, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt,
		stateslice.WithConcurrency(), stateslice.WithRebalance(stateslice.Rebalance{})); err == nil {
		t.Error("WithRebalance on a non-sliced strategy must fail at Build")
	}

	// A sequential session has nothing to rebalance: ErrNotSharded.
	p, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	if _, err := sess.Rebalance(context.Background()); !errors.Is(err, stateslice.ErrNotSharded) {
		t.Errorf("sequential Rebalance returned %v, want ErrNotSharded", err)
	}

	// A cancelled context gates entry.
	sp, err := stateslice.Build(chaosWorkload(), stateslice.MemOpt, stateslice.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ssess, err := sp.NewSession(stateslice.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ssess.Close(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ssess.Rebalance(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Rebalance with a cancelled context returned %v, want context.Canceled", err)
	}
}
